// Dense row-major matrix of doubles, plus a non-owning const view.
//
// This is the workhorse for all small/skinny dense math in the library: the
// SVD factors U, V (n x r), the r x r subspace matrices H and P of CSR+, and
// the n x |Q| similarity blocks. Storage is a contiguous row-major buffer so
// that sparse-times-dense products stream rows of the right-hand side.
//
// The API is split into an owning type (DenseMatrix) and a shared read
// surface (DenseMatrixView). A view is 16 bytes of {pointer, rows, cols}
// over *any* row-major double buffer — a DenseMatrix's heap storage or a
// matrix section of an mmap'ed .cspc artifact — so read-only consumers
// (GEMM/dot-rows kernels, SavePrecompute, fingerprinting, the cache scatter
// path) never force a copy and never care who owns the bytes. A view does
// not extend the lifetime of the memory it aliases: keep the owner (matrix
// or core::ArtifactMapping) alive for as long as the view is used.

#ifndef CSRPLUS_LINALG_DENSE_MATRIX_H_
#define CSRPLUS_LINALG_DENSE_MATRIX_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace csrplus::linalg {

/// Index type for matrix/graph dimensions.
using Index = int64_t;

class DenseMatrix;

/// Non-owning const view of a rows x cols row-major double buffer.
///
/// Implicitly constructible from `const DenseMatrix&` so every read-only
/// routine that takes a view accepts owning matrices unchanged; there is
/// deliberately *no* implicit conversion back (materialising a view is a
/// copy, and copies must be spelled out via ToMatrix()).
class DenseMatrixView {
 public:
  /// An empty 0x0 view.
  constexpr DenseMatrixView() : data_(nullptr), rows_(0), cols_(0) {}

  /// A view over a foreign row-major buffer holding rows * cols doubles.
  /// `data` may be null only when the view is empty.
  DenseMatrixView(const double* data, Index rows, Index cols)
      : data_(data), rows_(rows), cols_(cols) {
    CSR_CHECK(rows >= 0 && cols >= 0);
    CSR_CHECK(data != nullptr || rows * cols == 0);
  }

  /// Views an owning matrix (implicit: read-only call sites keep working).
  /// Binding to a temporary is allowed — a temporary argument outlives the
  /// full expression, which covers every read-only call — but *storing* a
  /// view of a temporary dangles, exactly like std::string_view.
  DenseMatrixView(const DenseMatrix& m);  // NOLINT(runtime/explicit)

  /// Returns the transpose as a freshly allocated owning matrix.
  DenseMatrix Transposed() const;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  double operator()(Index i, Index j) const {
    CSR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Pointer to the start of row i.
  const double* RowPtr(Index i) const { return data_ + i * cols_; }

  const double* data() const { return data_; }

  /// Size in bytes of the row-major payload (rows * cols * sizeof(double)).
  int64_t PayloadBytes() const {
    return size() * static_cast<int64_t>(sizeof(double));
  }

  /// Copies row i into a new vector.
  std::vector<double> Row(Index i) const;

  /// Extracts the sub-block of the given rows (in order), all columns, into
  /// a freshly allocated owning matrix.
  DenseMatrix SelectRows(const std::vector<Index>& row_ids) const;

  /// Materialises the viewed block as an owning matrix (the one explicit
  /// view -> matrix conversion).
  DenseMatrix ToMatrix() const;

  /// Elementwise equality (same shape, bitwise-equal payload).
  bool operator==(const DenseMatrixView& other) const;

 private:
  const double* data_;
  Index rows_;
  Index cols_;
};

/// Dense row-major matrix of doubles (the owning type).
class DenseMatrix {
 public:
  /// An empty 0x0 matrix.
  DenseMatrix() : rows_(0), cols_(0) {}

  /// A rows x cols matrix, zero-initialised. The element count is computed
  /// with a checked multiply *before* any allocation, so hostile dimension
  /// pairs (e.g. from a corrupt artifact header that slipped past
  /// validation) die on a CHECK instead of overflowing Index.
  DenseMatrix(Index rows, Index cols)
      : rows_(rows), cols_(cols), data_(CheckedCount(rows, cols), 0.0) {}

  /// Builds from nested initialiser lists; all rows must have equal length.
  /// Intended for tests and worked examples.
  DenseMatrix(std::initializer_list<std::initializer_list<double>> rows);

  /// The rows x cols zero matrix.
  static DenseMatrix Zero(Index rows, Index cols) {
    return DenseMatrix(rows, cols);
  }

  /// The n x n identity.
  static DenseMatrix Identity(Index n);

  /// A diagonal matrix from the given entries.
  static DenseMatrix Diagonal(const std::vector<double>& diag);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(Index i, Index j) {
    CSR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double operator()(Index i, Index j) const {
    CSR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Pointer to the start of row i.
  double* RowPtr(Index i) { return data_.data() + i * cols_; }
  const double* RowPtr(Index i) const { return data_.data() + i * cols_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Heap bytes held by this matrix.
  int64_t AllocatedBytes() const {
    return static_cast<int64_t>(data_.capacity() * sizeof(double));
  }

  /// Size in bytes of the row-major payload (rows * cols * sizeof(double));
  /// the exact amount written/read by the raw-buffer helpers below.
  int64_t PayloadBytes() const {
    return size() * static_cast<int64_t>(sizeof(double));
  }

  /// Copies the row-major payload into `out`, which must hold at least
  /// PayloadBytes() bytes. Entries are native-endian IEEE-754 doubles.
  void CopyToBytes(void* out) const;

  /// Rebuilds a rows x cols matrix from a row-major buffer of exactly
  /// rows * cols native-endian doubles (the inverse of CopyToBytes).
  static DenseMatrix FromRawBuffer(Index rows, Index cols, const double* data);

  /// Releases storage and resets to 0x0.
  void Clear() {
    rows_ = cols_ = 0;
    std::vector<double>().swap(data_);
  }

  /// Copies column j into a new vector.
  std::vector<double> Column(Index j) const;

  /// Copies row i into a new vector.
  std::vector<double> Row(Index i) const;

  /// Sets column j from `v` (must have rows() entries).
  void SetColumn(Index j, const std::vector<double>& v);

  /// Sets row i from `v` (must have cols() entries).
  void SetRow(Index i, const std::vector<double>& v);

  /// Returns the transpose as a new matrix.
  DenseMatrix Transposed() const;

  /// Transposes a square matrix in place (no allocation).
  void TransposeInPlaceSquare();

  /// Extracts the sub-block of the given rows (in order), all columns.
  DenseMatrix SelectRows(const std::vector<Index>& row_ids) const;

  /// Multi-line human-readable rendering (for tests / small matrices).
  std::string ToString(int precision = 4) const;

  bool operator==(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  // Validates the shape and returns the element count, CHECK-failing before
  // the multiply can overflow (the count feeds a vector allocation).
  static std::size_t CheckedCount(Index rows, Index cols) {
    CSR_CHECK(rows >= 0 && cols >= 0);
    Index count = 0;
    CSR_CHECK(!__builtin_mul_overflow(rows, cols, &count))
        << "matrix dimensions overflow: " << rows << " x " << cols;
    return static_cast<std::size_t>(count);
  }

  Index rows_;
  Index cols_;
  std::vector<double> data_;
};

inline DenseMatrixView::DenseMatrixView(const DenseMatrix& m)
    : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

}  // namespace csrplus::linalg

#endif  // CSRPLUS_LINALG_DENSE_MATRIX_H_
