#include "linalg/dense_ops.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "linalg/kernels/kernels.h"
#include "obs/stats.h"

namespace csrplus::linalg {
namespace {

// Core row-major product C = A(MxK) * B(KxN): row shards feed the blocked
// ikj driver built on the dispatched axpy_row kernel, so the inner loop
// streams rows of B and C with whatever SIMD width the active ISA has. Rows
// of C are written by disjoint shards and every C element accumulates its k
// products in ascending order, so the result is bitwise identical for every
// thread count and every ISA. No zero-skip on A entries: 0 * NaN must stay
// NaN so upstream numerical blowups in B propagate instead of being
// silently masked.
DenseMatrix GemmNoTrans(DenseMatrixView a, DenseMatrixView b) {
  const Index m = a.rows(), k = a.cols(), n = b.cols();
  DenseMatrix c(m, n);
  const kernels::KernelTable<double>& kt = kernels::F64();
  ParallelFor(m, m * k * n, [&](Index row_begin, Index row_end) {
    kernels::GemmNnTiled(kt, a.RowPtr(row_begin), k, b.data(), n,
                         c.RowPtr(row_begin), n, row_end - row_begin, k, n);
  });
  return c;
}

}  // namespace

DenseMatrix Gemm(DenseMatrixView a, DenseMatrixView b, Transpose ta,
                 Transpose tb) {
  const Index a_rows = ta == Transpose::kNo ? a.rows() : a.cols();
  const Index a_cols = ta == Transpose::kNo ? a.cols() : a.rows();
  const Index b_rows = tb == Transpose::kNo ? b.rows() : b.cols();
  const Index b_cols = tb == Transpose::kNo ? b.cols() : b.rows();
  CSR_CHECK_EQ(a_cols, b_rows) << "Gemm: inner dimensions differ";
  CSRPLUS_OBS_COUNTER_ADD("csrplus.kernel.gemm_calls", "calls",
                          "dense GEMM kernel invocations", 1);
  CSRPLUS_OBS_COUNTER_ADD("csrplus.kernel.gemm_flops", "flops",
                          "multiply-add pairs issued by dense GEMM kernels",
                          2 * a_rows * static_cast<int64_t>(a_cols) * b_cols);

  if (ta == Transpose::kNo && tb == Transpose::kNo) {
    return GemmNoTrans(a, b);
  }
  if (ta == Transpose::kYes && tb == Transpose::kNo) {
    // C = A^T B: accumulate outer products of rows of A with rows of B. The
    // p-loop scatters over all of C, so the parallel path gives each shard a
    // private accumulator and reduces them in shard order afterwards (no
    // unsynchronised writes; deterministic for a fixed thread count). No
    // zero-skip on A entries — 0 * NaN must propagate.
    DenseMatrix c(a_rows, b_cols);
    const Index m = a.rows();
    const kernels::KernelTable<double>& kt = kernels::F64();
    const auto accumulate = [&](DenseMatrix* acc, Index begin, Index end) {
      for (Index p = begin; p < end; ++p) {
        const double* arow = a.RowPtr(p);
        const double* brow = b.RowPtr(p);
        for (Index i = 0; i < a_rows; ++i) {
          kt.axpy_row(acc->RowPtr(i), brow, arow[i], b_cols);
        }
      }
    };
    const int shards = ParallelShardCount(m, m * a_rows * b_cols);
    if (shards <= 1) {
      accumulate(&c, 0, m);
      return c;
    }
    std::vector<DenseMatrix> partial(static_cast<std::size_t>(shards),
                                     DenseMatrix(a_rows, b_cols));
    ParallelForShards(m, shards, [&](int s, Index begin, Index end) {
      accumulate(&partial[static_cast<std::size_t>(s)], begin, end);
    });
    for (const DenseMatrix& acc : partial) AddScaled(1.0, acc, &c);
    return c;
  }
  if (ta == Transpose::kNo && tb == Transpose::kYes) {
    // C = A B^T: materialize B^T once (O(kn) traffic against O(mkn) flops)
    // and run the SIMD NN driver. Each C_ij still sums a_ip * b_jp over
    // ascending p from 0.0 — the same addition sequence as the old per-(i,j)
    // register dot — so results are bitwise unchanged.
    return GemmNoTrans(a, b.Transposed());
  }
  // A^T B^T = (B A)^T.
  return Gemm(b, a).Transposed();
}

void GemmAccumulate(double alpha, DenseMatrixView a, DenseMatrixView b,
                    DenseMatrix* c) {
  CSR_CHECK_EQ(a.cols(), b.rows());
  CSR_CHECK_EQ(c->rows(), a.rows());
  CSR_CHECK_EQ(c->cols(), b.cols());
  const Index m = a.rows(), k = a.cols(), n = b.cols();
  // Row shards write disjoint rows of C. No zero-skip: alpha or A entries
  // equal to zero must still multiply B so NaN/Inf in B propagate.
  const kernels::KernelTable<double>& kt = kernels::F64();
  ParallelFor(m, m * k * n, [&](Index row_begin, Index row_end) {
    for (Index i = row_begin; i < row_end; ++i) {
      const double* arow = a.RowPtr(i);
      double* crow = c->RowPtr(i);
      for (Index p = 0; p < k; ++p) {
        kt.axpy_row(crow, b.RowPtr(p), alpha * arow[p], n);
      }
    }
  });
}

std::vector<double> MatVec(DenseMatrixView a, const std::vector<double>& x,
                           Transpose ta) {
  if (ta == Transpose::kNo) {
    CSR_CHECK_EQ(a.cols(), static_cast<Index>(x.size()));
    std::vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
    const kernels::KernelTable<double>& kt = kernels::F64();
    ParallelFor(a.rows(), a.rows() * a.cols(), [&](Index begin, Index end) {
      kt.dot_rows(a.RowPtr(begin), a.cols(), x.data(),
                  y.data() + static_cast<std::size_t>(begin), end - begin,
                  a.cols());
    });
    return y;
  }
  CSR_CHECK_EQ(a.rows(), static_cast<Index>(x.size()));
  std::vector<double> y(static_cast<std::size_t>(a.cols()), 0.0);
  for (Index i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    const double xi = x[static_cast<std::size_t>(i)];
    if (xi == 0.0) continue;
    for (Index j = 0; j < a.cols(); ++j) y[static_cast<std::size_t>(j)] += xi * arow[j];
  }
  return y;
}

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  CSR_CHECK_EQ(x.size(), y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double Norm2(const std::vector<double>& x) { return std::sqrt(Dot(x, x)); }

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  CSR_CHECK_EQ(x.size(), y->size());
  kernels::F64().axpy_row(y->data(), x.data(), alpha,
                          static_cast<int64_t>(x.size()));
}

void Scale(double alpha, std::vector<double>* x) {
  kernels::F64().scale(x->data(), alpha, static_cast<int64_t>(x->size()));
}

void AddScaled(double alpha, DenseMatrixView a, DenseMatrix* b) {
  CSR_CHECK_EQ(a.rows(), b->rows());
  CSR_CHECK_EQ(a.cols(), b->cols());
  kernels::F64().axpy_row(b->data(), a.data(), alpha, a.size());
}

void ScaleInPlace(double alpha, DenseMatrix* a) {
  kernels::F64().scale(a->data(), alpha, a->size());
}

double FrobeniusNorm(DenseMatrixView a) {
  double sum = 0.0;
  const double* p = a.data();
  for (Index i = 0; i < a.size(); ++i) sum += p[i] * p[i];
  return std::sqrt(sum);
}

double MaxAbsDiff(DenseMatrixView a, DenseMatrixView b) {
  CSR_CHECK_EQ(a.rows(), b.rows());
  CSR_CHECK_EQ(a.cols(), b.cols());
  double maxd = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (Index i = 0; i < a.size(); ++i) {
    maxd = std::max(maxd, std::fabs(pa[i] - pb[i]));
  }
  return maxd;
}

double MaxAbs(DenseMatrixView a) {
  double maxv = 0.0;
  const double* p = a.data();
  for (Index i = 0; i < a.size(); ++i) maxv = std::max(maxv, std::fabs(p[i]));
  return maxv;
}

DenseMatrix DiagScale(const std::vector<double>& d1, DenseMatrixView a,
                      const std::vector<double>& d2) {
  if (!d1.empty()) CSR_CHECK_EQ(static_cast<Index>(d1.size()), a.rows());
  if (!d2.empty()) CSR_CHECK_EQ(static_cast<Index>(d2.size()), a.cols());
  DenseMatrix out(a.rows(), a.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    const double di = d1.empty() ? 1.0 : d1[static_cast<std::size_t>(i)];
    const double* src = a.RowPtr(i);
    double* dst = out.RowPtr(i);
    for (Index j = 0; j < a.cols(); ++j) {
      const double dj = d2.empty() ? 1.0 : d2[static_cast<std::size_t>(j)];
      dst[j] = di * src[j] * dj;
    }
  }
  return out;
}

bool AllClose(DenseMatrixView a, DenseMatrixView b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return MaxAbsDiff(a, b) <= tol;
}

}  // namespace csrplus::linalg
