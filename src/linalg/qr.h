// Thin (economy) QR factorisation via Householder reflections.
//
// Used by the randomized range finder in src/svd to orthonormalise sketch
// matrices: for a tall n x k input A (n >= k) it produces Q (n x k with
// orthonormal columns) and R (k x k upper triangular) with A = Q R.

#ifndef CSRPLUS_LINALG_QR_H_
#define CSRPLUS_LINALG_QR_H_

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace csrplus::linalg {

/// Result of a thin QR factorisation.
struct QrResult {
  DenseMatrix q;  ///< n x k, orthonormal columns.
  DenseMatrix r;  ///< k x k, upper triangular.
};

/// Computes the thin QR of a tall matrix (rows >= cols required).
///
/// Rank deficiency is tolerated: zero columns of A yield zero diagonal
/// entries in R and arbitrary orthonormal completion in Q.
Result<QrResult> HouseholderQr(const DenseMatrix& a);

/// Orthonormalises the columns of `a` in place via the Q factor of its QR.
/// Convenience wrapper used by the range finder and Lanczos restarts.
Status OrthonormalizeColumns(DenseMatrix* a);

}  // namespace csrplus::linalg

#endif  // CSRPLUS_LINALG_QR_H_
