#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <limits>

#include "common/parallel.h"
#include "linalg/kernels/kernels.h"
#include "obs/stats.h"

namespace csrplus::linalg {

CsrMatrix CsrMatrix::FromCoo(const CooMatrix& coo) {
  CsrMatrix m;
  m.rows_ = coo.rows();
  m.cols_ = coo.cols();
  CSR_CHECK_LE(m.cols_, std::numeric_limits<int32_t>::max())
      << "column indices stored as int32";

  const auto& triples = coo.triples();
  // Counting pass.
  std::vector<int64_t> counts(static_cast<std::size_t>(m.rows_) + 1, 0);
  for (const Triple& t : triples) {
    ++counts[static_cast<std::size_t>(t.row) + 1];
  }
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];

  // Scatter pass (stable within row order not guaranteed; we sort rows next).
  std::vector<int32_t> cols(triples.size());
  std::vector<double> vals(triples.size());
  std::vector<int64_t> cursor = counts;
  for (const Triple& t : triples) {
    const int64_t pos = cursor[static_cast<std::size_t>(t.row)]++;
    cols[static_cast<std::size_t>(pos)] = static_cast<int32_t>(t.col);
    vals[static_cast<std::size_t>(pos)] = t.value;
  }

  // Sort each row by column and merge duplicates.
  std::vector<int64_t> new_row_ptr(static_cast<std::size_t>(m.rows_) + 1, 0);
  std::vector<std::pair<int32_t, double>> rowbuf;
  int64_t write = 0;
  for (Index i = 0; i < m.rows_; ++i) {
    const int64_t begin = counts[static_cast<std::size_t>(i)];
    const int64_t end = counts[static_cast<std::size_t>(i) + 1];
    rowbuf.clear();
    for (int64_t p = begin; p < end; ++p) {
      rowbuf.emplace_back(cols[static_cast<std::size_t>(p)],
                          vals[static_cast<std::size_t>(p)]);
    }
    std::sort(rowbuf.begin(), rowbuf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t k = 0; k < rowbuf.size(); ++k) {
      if (k > 0 && rowbuf[k].first == rowbuf[k - 1].first) {
        vals[static_cast<std::size_t>(write - 1)] += rowbuf[k].second;
      } else {
        cols[static_cast<std::size_t>(write)] = rowbuf[k].first;
        vals[static_cast<std::size_t>(write)] = rowbuf[k].second;
        ++write;
      }
    }
    new_row_ptr[static_cast<std::size_t>(i) + 1] = write;
  }
  cols.resize(static_cast<std::size_t>(write));
  vals.resize(static_cast<std::size_t>(write));
  cols.shrink_to_fit();
  vals.shrink_to_fit();

  m.row_ptr_ = std::move(new_row_ptr);
  m.col_index_ = std::move(cols);
  m.values_ = std::move(vals);
  return m;
}

CsrMatrix CsrMatrix::FromParts(Index rows, Index cols,
                               std::vector<int64_t> row_ptr,
                               std::vector<int32_t> col_index,
                               std::vector<double> values) {
  CSR_CHECK_EQ(static_cast<Index>(row_ptr.size()), rows + 1);
  CSR_CHECK_EQ(col_index.size(), values.size());
  CSR_CHECK_EQ(row_ptr.back(), static_cast<int64_t>(values.size()));
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_index_ = std::move(col_index);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::Identity(Index n) {
  CsrMatrix m;
  m.rows_ = m.cols_ = n;
  m.row_ptr_.resize(static_cast<std::size_t>(n) + 1);
  m.col_index_.resize(static_cast<std::size_t>(n));
  m.values_.assign(static_cast<std::size_t>(n), 1.0);
  for (Index i = 0; i <= n; ++i) m.row_ptr_[static_cast<std::size_t>(i)] = i;
  for (Index i = 0; i < n; ++i) {
    m.col_index_[static_cast<std::size_t>(i)] = static_cast<int32_t>(i);
  }
  return m;
}

int64_t CsrMatrix::AllocatedBytes() const {
  return static_cast<int64_t>(row_ptr_.capacity() * sizeof(int64_t) +
                              col_index_.capacity() * sizeof(int32_t) +
                              values_.capacity() * sizeof(double));
}

CsrMatrix CsrMatrix::Transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  const std::size_t nz = values_.size();
  t.row_ptr_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  t.col_index_.resize(nz);
  t.values_.resize(nz);

  for (std::size_t p = 0; p < nz; ++p) {
    ++t.row_ptr_[static_cast<std::size_t>(col_index_[p]) + 1];
  }
  for (std::size_t i = 1; i < t.row_ptr_.size(); ++i) {
    t.row_ptr_[i] += t.row_ptr_[i - 1];
  }
  std::vector<int64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (Index i = 0; i < rows_; ++i) {
    for (int64_t p = row_ptr_[static_cast<std::size_t>(i)];
         p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      const int32_t j = col_index_[static_cast<std::size_t>(p)];
      const int64_t pos = cursor[static_cast<std::size_t>(j)]++;
      t.col_index_[static_cast<std::size_t>(pos)] = static_cast<int32_t>(i);
      t.values_[static_cast<std::size_t>(pos)] =
          values_[static_cast<std::size_t>(p)];
    }
  }
  return t;  // columns within each row are ascending because i ascends.
}

std::vector<double> CsrMatrix::Multiply(const std::vector<double>& x) const {
  CSR_CHECK_EQ(static_cast<Index>(x.size()), cols_);
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  // Row shards write disjoint entries of y; identical result for every
  // thread count.
  ParallelFor(rows_, nnz(), [&](Index begin, Index end) {
    for (Index i = begin; i < end; ++i) {
      double sum = 0.0;
      for (int64_t p = row_ptr_[static_cast<std::size_t>(i)];
           p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
        sum += values_[static_cast<std::size_t>(p)] *
               x[static_cast<std::size_t>(col_index_[static_cast<std::size_t>(p)])];
      }
      y[static_cast<std::size_t>(i)] = sum;
    }
  });
  return y;
}

std::vector<double> CsrMatrix::MultiplyTranspose(
    const std::vector<double>& x) const {
  CSR_CHECK_EQ(static_cast<Index>(x.size()), rows_);
  std::vector<double> y(static_cast<std::size_t>(cols_), 0.0);
  // y = A^T x scatters into y, so shards partition the *output* index range
  // instead: each shard walks all rows but only accumulates the entries whose
  // column lands in its range (found by binary search within the sorted
  // row). Writes are disjoint and each y[j] is accumulated in ascending row
  // order — exactly the serial order — so the result is identical for every
  // thread count. No per-shard accumulator copies of y are needed.
  ParallelFor(cols_, nnz(), [&](Index col_begin, Index col_end) {
    const int32_t* cols_data = col_index_.data();
    for (Index i = 0; i < rows_; ++i) {
      const double xi = x[static_cast<std::size_t>(i)];
      if (xi == 0.0) continue;
      const int32_t* row_begin = cols_data + row_ptr_[static_cast<std::size_t>(i)];
      const int32_t* row_end = cols_data + row_ptr_[static_cast<std::size_t>(i) + 1];
      const int32_t* lo =
          std::lower_bound(row_begin, row_end, static_cast<int32_t>(col_begin));
      const int32_t* hi =
          std::lower_bound(lo, row_end, static_cast<int32_t>(col_end));
      for (const int32_t* q = lo; q < hi; ++q) {
        y[static_cast<std::size_t>(*q)] +=
            xi * values_[static_cast<std::size_t>(q - cols_data)];
      }
    }
  });
  return y;
}

DenseMatrix CsrMatrix::MultiplyDense(const DenseMatrix& b) const {
  CSR_CHECK_EQ(b.rows(), cols_);
  CSRPLUS_OBS_COUNTER_ADD("csrplus.kernel.spmm_calls", "calls",
                          "sparse-times-dense (SpMM) kernel invocations", 1);
  CSRPLUS_OBS_COUNTER_ADD("csrplus.kernel.spmm_flops", "flops",
                          "multiply-add pairs issued by SpMM kernels",
                          2 * nnz() * b.cols());
  DenseMatrix c(rows_, b.cols());
  const Index k = b.cols();
  // Row shards write disjoint rows of C; identical result for every thread
  // count. The inner row update is the dispatched SIMD axpy (bit-identical
  // across ISAs — see linalg/kernels/kernels.h).
  const kernels::KernelTable<double>& kt = kernels::F64();
  ParallelFor(rows_, nnz() * k, [&](Index begin, Index end) {
    for (Index i = begin; i < end; ++i) {
      double* crow = c.RowPtr(i);
      for (int64_t p = row_ptr_[static_cast<std::size_t>(i)];
           p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
        kt.axpy_row(crow, b.RowPtr(col_index_[static_cast<std::size_t>(p)]),
                    values_[static_cast<std::size_t>(p)], k);
      }
    }
  });
  return c;
}

DenseMatrix CsrMatrix::MultiplyTransposeDense(const DenseMatrix& b) const {
  DenseMatrix c(cols_, b.cols());
  MultiplyTransposeDenseInto(b, &c);
  return c;
}

void CsrMatrix::MultiplyTransposeDenseInto(const DenseMatrix& b,
                                           DenseMatrix* out) const {
  CSR_CHECK_EQ(b.rows(), rows_);
  CSR_CHECK_EQ(out->rows(), cols_);
  CSR_CHECK_EQ(out->cols(), b.cols());
  CSR_CHECK(out->data() != b.data()) << "out must not alias b";
  CSRPLUS_OBS_COUNTER_ADD("csrplus.kernel.spmm_calls", "calls",
                          "sparse-times-dense (SpMM) kernel invocations", 1);
  CSRPLUS_OBS_COUNTER_ADD("csrplus.kernel.spmm_flops", "flops",
                          "multiply-add pairs issued by SpMM kernels",
                          2 * nnz() * b.cols());
  DenseMatrix& c = *out;
  const Index k = b.cols();
  // C = A^T B is a scatter over rows of C, so shards partition the output
  // rows (columns of A): each shard zeroes its slice of C, walks all rows of
  // A, and accumulates only the nonzeros whose column index lands in its
  // range (binary search within the sorted row). Writes are disjoint and
  // each output row is accumulated in ascending input-row order — the serial
  // order — so the result is identical for every thread count. The even
  // column split can be unbalanced on heavily skewed column distributions;
  // acceptable for the near-uniform transition matrices handled here.
  const kernels::KernelTable<double>& kt = kernels::F64();
  ParallelFor(cols_, nnz() * k, [&](Index col_begin, Index col_end) {
    std::fill(c.RowPtr(col_begin), c.RowPtr(col_begin) + (col_end - col_begin) * k,
              0.0);
    const int32_t* cols_data = col_index_.data();
    for (Index i = 0; i < rows_; ++i) {
      const int32_t* row_begin = cols_data + row_ptr_[static_cast<std::size_t>(i)];
      const int32_t* row_end = cols_data + row_ptr_[static_cast<std::size_t>(i) + 1];
      const int32_t* lo =
          std::lower_bound(row_begin, row_end, static_cast<int32_t>(col_begin));
      const int32_t* hi =
          std::lower_bound(lo, row_end, static_cast<int32_t>(col_end));
      if (lo == hi) continue;
      const double* brow = b.RowPtr(i);
      for (const int32_t* q = lo; q < hi; ++q) {
        kt.axpy_row(c.RowPtr(*q), brow,
                    values_[static_cast<std::size_t>(q - cols_data)], k);
      }
    }
  });
}

std::vector<double> CsrMatrix::ColumnSums() const {
  std::vector<double> sums(static_cast<std::size_t>(cols_), 0.0);
  for (std::size_t p = 0; p < values_.size(); ++p) {
    sums[static_cast<std::size_t>(col_index_[p])] += values_[p];
  }
  return sums;
}

std::vector<double> CsrMatrix::RowSums() const {
  std::vector<double> sums(static_cast<std::size_t>(rows_), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (int64_t p = row_ptr_[static_cast<std::size_t>(i)];
         p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      s += values_[static_cast<std::size_t>(p)];
    }
    sums[static_cast<std::size_t>(i)] = s;
  }
  return sums;
}

void CsrMatrix::ScaleColumns(const std::vector<double>& scale) {
  CSR_CHECK_EQ(static_cast<Index>(scale.size()), cols_);
  for (std::size_t p = 0; p < values_.size(); ++p) {
    values_[p] *= scale[static_cast<std::size_t>(col_index_[p])];
  }
}

void CsrMatrix::ScaleRows(const std::vector<double>& scale) {
  CSR_CHECK_EQ(static_cast<Index>(scale.size()), rows_);
  for (Index i = 0; i < rows_; ++i) {
    const double s = scale[static_cast<std::size_t>(i)];
    for (int64_t p = row_ptr_[static_cast<std::size_t>(i)];
         p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      values_[static_cast<std::size_t>(p)] *= s;
    }
  }
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix d(rows_, cols_);
  for (Index i = 0; i < rows_; ++i) {
    for (int64_t p = row_ptr_[static_cast<std::size_t>(i)];
         p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      d(i, col_index_[static_cast<std::size_t>(p)]) +=
          values_[static_cast<std::size_t>(p)];
    }
  }
  return d;
}

double CsrMatrix::At(Index row, Index col) const {
  CSR_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  const int32_t target = static_cast<int32_t>(col);
  const auto begin = col_index_.begin() + row_ptr_[static_cast<std::size_t>(row)];
  const auto end = col_index_.begin() + row_ptr_[static_cast<std::size_t>(row) + 1];
  auto it = std::lower_bound(begin, end, target);
  if (it == end || *it != target) return 0.0;
  return values_[static_cast<std::size_t>(it - col_index_.begin())];
}

}  // namespace csrplus::linalg
