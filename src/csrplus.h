// Umbrella public header for the csrplus library.
//
// Quick start (errors propagate as Status — see common/status.h):
//
//   #include "csrplus.h"
//
//   csrplus::graph::GraphBuilder builder(n);
//   builder.AddEdge(u, v);  // ...
//   auto graph = builder.Build();
//   if (!graph.ok()) return graph.status();
//
//   csrplus::core::CsrPlusOptions options;   // r = 5, c = 0.6, eps = 1e-5
//   CSR_ASSIGN_OR_RETURN(
//       auto engine, csrplus::core::CsrPlusEngine::Precompute(*graph, options));
//   CSR_ASSIGN_OR_RETURN(auto scores, engine.MultiSourceQuery({q1, q2, q3}));
//
// Every engine (CSR+ and the baselines) implements core::QueryEngine,
// service::QueryService turns any of them into a concurrent batching server,
// service::EngineRegistry hosts many named graphs (tenants) in one process,
// and net::Server / net::Client expose those services over TCP.
// See README.md for the architecture overview and examples/ for runnable
// programs.

#ifndef CSRPLUS_CSRPLUS_H_
#define CSRPLUS_CSRPLUS_H_

#include "baselines/cosimmate.h"
#include "baselines/iterative_allpairs.h"
#include "baselines/ni_sim.h"
#include "baselines/rls.h"
#include "baselines/rp_cosim.h"
#include "cache/column_cache.h"
#include "common/check.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/memory.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"
#include "common/version.h"
#include "core/cosimrank.h"
#include "core/csrplus_engine.h"
#include "core/dynamic_engine.h"
#include "core/precompute_io.h"
#include "core/query_engine.h"
#include "core/topk.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/normalize.h"
#include "graph/stats.h"
#include "linalg/dense_matrix.h"
#include "linalg/dense_ops.h"
#include "linalg/jacobi.h"
#include "linalg/kernels/kernels.h"
#include "linalg/kron.h"
#include "linalg/lu.h"
#include "linalg/qr.h"
#include "linalg/sparse_matrix.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket_util.h"
#include "net/wire_protocol.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "service/engine_registry.h"
#include "service/query_service.h"
#include "svd/truncated_svd.h"
#include "svd/update.h"

#endif  // CSRPLUS_CSRPLUS_H_
