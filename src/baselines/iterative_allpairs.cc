#include "baselines/iterative_allpairs.h"

#include "common/memory.h"
#include "linalg/dense_ops.h"
#include "obs/trace.h"

namespace csrplus::baselines {

Result<IterativeAllPairsEngine> IterativeAllPairsEngine::Precompute(
    const CsrMatrix& transition, const IterativeOptions& options) {
  CSRPLUS_OBS_COUNTER_ADD("csrplus.baseline.iterative.precomputes", "calls",
                          "CSR-IT dense-iteration precompute invocations", 1);
  CSRPLUS_OBS_SCOPED_US("csrplus.baseline.iterative.precompute_us",
                        "CSR-IT dense-iteration precompute wall time");
  CSRPLUS_TRACE_SPAN_ARG(span, obs::spans::kBaseline, "n", transition.rows());
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping factor must be in (0, 1)");
  }
  if (options.iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  const Index n = transition.rows();
  // Two dense n x n live at once (S and the product buffer).
  CSR_RETURN_IF_ERROR(MemoryBudget::Global().TryReserve(
      2 * n * n * static_cast<int64_t>(sizeof(double)),
      "CSR-IT dense similarity iteration"));

  // Two reused n x n buffers: allocations here are multi-GB on medium
  // graphs, so per-iteration reallocation would dominate wall time on
  // machines with slow page faulting.
  IterativeAllPairsEngine engine;
  DenseMatrix s = DenseMatrix::Identity(n);
  DenseMatrix work(n, n);
  for (int k = 0; k < options.iterations; ++k) {
    // S <- c Q^T S Q + I. S stays symmetric, so Q^T S Q = Q^T (Q^T S)^T.
    transition.MultiplyTransposeDenseInto(s, &work);  // work = Q^T S
    work.TransposeInPlaceSquare();                    // work = S Q
    transition.MultiplyTransposeDenseInto(work, &s);  // s = Q^T S Q
    linalg::ScaleInPlace(options.damping, &s);
    for (Index i = 0; i < n; ++i) s(i, i) += 1.0;
  }
  engine.s_ = std::move(s);
  return engine;
}

Result<DenseMatrix> IterativeAllPairsEngine::MultiSourceQuery(
    const std::vector<Index>& queries) const {
  const Index n = s_.rows();
  CSR_RETURN_IF_ERROR(core::ValidateQueries(queries, n));
  DenseMatrix out(n, static_cast<Index>(queries.size()));
  for (std::size_t j = 0; j < queries.size(); ++j) {
    const Index q = queries[j];
    for (Index i = 0; i < n; ++i) out(i, static_cast<Index>(j)) = s_(i, q);
  }
  return out;
}

Status IterativeAllPairsEngine::SingleSourceQueryInto(
    Index query, std::vector<double>* out) const {
  const Index n = s_.rows();
  CSR_RETURN_IF_ERROR(core::ValidateQueries({query}, n));
  out->resize(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    (*out)[static_cast<std::size_t>(i)] = s_(i, query);
  }
  return Status::OK();
}

}  // namespace csrplus::baselines
