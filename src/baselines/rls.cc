#include "baselines/rls.h"

#include "common/memory.h"
#include "linalg/dense_ops.h"
#include "obs/trace.h"

namespace csrplus::baselines {

Result<DenseMatrix> RlsMultiSource(const CsrMatrix& transition,
                                   const std::vector<Index>& queries,
                                   const RlsOptions& options) {
  CSRPLUS_OBS_COUNTER_ADD("csrplus.baseline.rls.queries", "calls",
                          "CSR-RLS multi-source query invocations", 1);
  CSRPLUS_OBS_SCOPED_US("csrplus.baseline.rls.query_us",
                        "CSR-RLS multi-source query wall time");
  CSRPLUS_TRACE_SPAN_ARG(span, obs::spans::kBaseline, "num_queries",
                         static_cast<int64_t>(queries.size()));
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping factor must be in (0, 1)");
  }
  if (options.iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  const Index n = transition.rows();
  const Index q = static_cast<Index>(queries.size());
  CSR_RETURN_IF_ERROR(core::ValidateQueries(queries, n));

  const int k_max = options.iterations;
  const int64_t forward_bytes = static_cast<int64_t>(k_max + 2) * n * q *
                                static_cast<int64_t>(sizeof(double));
  CSR_RETURN_IF_ERROR(MemoryBudget::Global().TryReserve(
      forward_bytes, "CSR-RLS stored forward iterates"));

  // Forward pass: V_k = Q^k E_Q, all K+1 blocks stored.
  std::vector<DenseMatrix> forward;
  forward.reserve(static_cast<std::size_t>(k_max) + 1);
  DenseMatrix e_q(n, q);
  for (Index j = 0; j < q; ++j) e_q(queries[static_cast<std::size_t>(j)], j) = 1.0;
  forward.push_back(std::move(e_q));
  for (int k = 1; k <= k_max; ++k) {
    forward.push_back(transition.MultiplyDense(forward.back()));
  }

  // Horner backward pass: U = V_K; U = V_k + c Q^T U.
  DenseMatrix u = std::move(forward.back());
  forward.pop_back();
  for (int k = k_max - 1; k >= 0; --k) {
    DenseMatrix t = transition.MultiplyTransposeDense(u);
    linalg::ScaleInPlace(options.damping, &t);
    linalg::AddScaled(1.0, forward.back(), &t);
    u = std::move(t);
    forward.pop_back();
  }
  return u;
}

}  // namespace csrplus::baselines
