// CoSimMate (Yu & McCann 2015) — repeated squaring over the full similarity
// matrix (Table 1 row 4 of the paper; an extension baseline here).
//
// Doubles the number of accumulated series terms per step in n-space:
//     S_0 = I,  T_0 = Q,
//     S_{t+1} = S_t + c^{2^t} T_t^T S_t T_t,   T_{t+1} = T_t^2,
// reaching 2^t terms after t steps — exponentially fewer iterations than
// CSR-IT for the same accuracy, but T_t densifies, so both time O(n^3) and
// memory O(n^2) confine it to small graphs (exactly the Table 1 trade-off;
// CSR+ runs the same doubling recurrence in the r x r subspace instead,
// which is Theorem 3.4).

#ifndef CSRPLUS_BASELINES_COSIMMATE_H_
#define CSRPLUS_BASELINES_COSIMMATE_H_

#include <vector>

#include "common/status.h"
#include "core/query_engine.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace csrplus::baselines {

using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Index;

/// Parameters of CoSimMate.
struct CoSimMateOptions {
  double damping = 0.6;
  /// Squaring steps t; accuracy after t steps matches 2^t iterations of
  /// CSR-IT. Three steps == 8 series terms.
  int squaring_steps = 3;
};

/// Runs the doubling recurrence; returns the full S (budget-guarded).
Result<DenseMatrix> CoSimMateAllPairs(const CsrMatrix& transition,
                                      const CoSimMateOptions& options);

/// Convenience multi-source wrapper (computes all pairs, selects columns).
Result<DenseMatrix> CoSimMateMultiSource(const CsrMatrix& transition,
                                         const std::vector<Index>& queries,
                                         const CoSimMateOptions& options);

/// QueryEngine adapter. Runs the doubling recurrence once at Precompute and
/// answers queries by selecting columns of the stored S (O(n^2) memory, so
/// small graphs only — the same Table 1 trade-off as the free functions).
class CoSimMateEngine : public core::QueryEngine {
 public:
  static Result<CoSimMateEngine> Precompute(const CsrMatrix& transition,
                                            const CoSimMateOptions& options);

  Result<DenseMatrix> MultiSourceQuery(
      const std::vector<Index>& queries) const override;
  Status SingleSourceQueryInto(Index query,
                               std::vector<double>* out) const override;
  Index NumNodes() const override { return s_.rows(); }
  std::string_view Name() const override { return "CoSimMate"; }

 private:
  CoSimMateEngine() = default;
  DenseMatrix s_;
};

}  // namespace csrplus::baselines

#endif  // CSRPLUS_BASELINES_COSIMMATE_H_
