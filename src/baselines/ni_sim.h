// CSR-NI — the low-rank SVD baseline of Li et al. (EDBT 2010), i.e. the
// method CSR+ optimises (Section 3.1 of the paper lists its deficiencies).
//
// Precompute (Eq. 6b):  Lambda = ((Sigma (x) Sigma)^{-1}
//                                  - c (V (x) V)^T (U (x) U))^{-1}
// Query      (Eq. 6a):  vec(S) = vec(I_n)
//                                  + c (U (x) U) Lambda (V (x) V)^T vec(I_n)
//
// Two fidelity modes:
//  * kFaithful — executes the published arithmetic: materialises the
//    (V (x) V) and (U (x) U) tensor factors as n^2 x r^2 dense matrices
//    (budget-guarded — the O(r^2 n^2) footprint the paper attacks) and
//    contracts them in O(r^4 n^2) time. ResourceExhausted on graphs where
//    the paper also reports NI failing.
//  * kMixedProduct — same algorithm structure (Lambda inversion, Eq. 6a
//    query), but the Gram tensor is computed via the Theorem 3.1 identity
//    Theta (x) Theta. Used to validate losslessness at ranks where the
//    faithful mode is prohibitively slow; results are identical.

#ifndef CSRPLUS_BASELINES_NI_SIM_H_
#define CSRPLUS_BASELINES_NI_SIM_H_

#include <vector>

#include "common/status.h"
#include "core/query_engine.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"
#include "svd/truncated_svd.h"

namespace csrplus::baselines {

using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Index;

/// How the (V (x) V)^T (U (x) U) Gram tensor is evaluated.
enum class NiFidelity { kFaithful, kMixedProduct };

/// Parameters of the NI baseline.
struct NiSimOptions {
  Index rank = 5;
  double damping = 0.6;
  NiFidelity fidelity = NiFidelity::kFaithful;
  svd::SvdOptions svd;  ///< rank is overridden by `rank`.
};

/// Precomputed Lambda plus the SVD factors needed by the query phase.
class NiSimEngine : public core::QueryEngine {
 public:
  /// Runs the SVD and the Eq.(6b) precomputation.
  static Result<NiSimEngine> Precompute(const CsrMatrix& transition,
                                        const NiSimOptions& options);

  /// Precomputes from existing SVD factors (so tests can feed CSR+ and NI
  /// the identical U, Sigma, V and assert bit-equality of S). The factors
  /// must decompose Q^T — the paper's convention; Precompute() performs the
  /// swap internally (see the derivation note in csrplus_engine.cc).
  static Result<NiSimEngine> PrecomputeFromFactors(
      const svd::TruncatedSvd& factors, const NiSimOptions& options);

  /// Multi-source query via Eq.(6a): n x |Q| block of S.
  Result<DenseMatrix> MultiSourceQuery(
      const std::vector<Index>& queries) const override;

  /// Single source as a one-column multi-source query.
  Status SingleSourceQueryInto(Index query,
                               std::vector<double>* out) const override {
    return core::SingleSourceViaMultiSource(*this, query, out);
  }

  Index num_nodes() const { return u_.rows(); }
  Index rank() const { return u_.cols(); }

  Index NumNodes() const override { return num_nodes(); }
  std::string_view Name() const override { return "CSR-NI"; }

  /// Lambda (r^2 x r^2), exposed for the Theorem 3.3/3.4 equivalence tests.
  const DenseMatrix& lambda() const { return lambda_; }

 private:
  NiSimEngine() = default;

  DenseMatrix u_;       // n x r
  DenseMatrix v_;       // n x r
  std::vector<double> sigma_;
  DenseMatrix lambda_;  // r^2 x r^2
  double damping_ = 0.6;
};

}  // namespace csrplus::baselines

#endif  // CSRPLUS_BASELINES_NI_SIM_H_
