// RP-CoSim (Renchi Yang, 2020) — randomized CoSimRank estimation via
// Gaussian random projections (Table 1 row 5; an extension baseline here).
//
// Uses E[G G^T / d] = I_n for a Gaussian sketch G (n x d):
//     S = sum_k c^k (Q^k)^T (Q^k)
//       ~ sum_k c^k W_k W_k^T / d,   W_k = (Q^k)^T G = Q^T W_{k-1}.
// The multi-source block needs only W_k and its query rows, so memory is
// O(n d) — but the estimate carries Monte-Carlo variance ~ 1/sqrt(d),
// unlike the deterministic rank-r truncation of CSR+. The ablation bench
// compares the two accuracy/time trade-offs directly.

#ifndef CSRPLUS_BASELINES_RP_COSIM_H_
#define CSRPLUS_BASELINES_RP_COSIM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace csrplus::baselines {

using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Index;

/// Parameters of RP-CoSim.
struct RpCoSimOptions {
  double damping = 0.6;
  /// Series length K.
  int iterations = 5;
  /// Number of Gaussian samples d (variance ~ 1/sqrt(d)).
  Index num_samples = 200;
  uint64_t seed = 0x52504353ULL;
};

/// Multi-source estimate of [S]_{*,Q} (n x |Q|).
Result<DenseMatrix> RpCoSimMultiSource(const CsrMatrix& transition,
                                       const std::vector<Index>& queries,
                                       const RpCoSimOptions& options);

}  // namespace csrplus::baselines

#endif  // CSRPLUS_BASELINES_RP_COSIM_H_
