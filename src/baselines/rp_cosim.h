// RP-CoSim (Renchi Yang, 2020) — randomized CoSimRank estimation via
// Gaussian random projections (Table 1 row 5; an extension baseline here).
//
// Uses E[G G^T / d] = I_n for a Gaussian sketch G (n x d):
//     S = sum_k c^k (Q^k)^T (Q^k)
//       ~ sum_k c^k W_k W_k^T / d,   W_k = (Q^k)^T G = Q^T W_{k-1}.
// The multi-source block needs only W_k and its query rows, so memory is
// O(n d) — but the estimate carries Monte-Carlo variance ~ 1/sqrt(d),
// unlike the deterministic rank-r truncation of CSR+. The ablation bench
// compares the two accuracy/time trade-offs directly.

#ifndef CSRPLUS_BASELINES_RP_COSIM_H_
#define CSRPLUS_BASELINES_RP_COSIM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/query_engine.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace csrplus::baselines {

using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Index;

/// Parameters of RP-CoSim.
struct RpCoSimOptions {
  double damping = 0.6;
  /// Series length K.
  int iterations = 5;
  /// Number of Gaussian samples d (variance ~ 1/sqrt(d)).
  Index num_samples = 200;
  uint64_t seed = 0x52504353ULL;
};

/// Validates an RpCoSimOptions instance (damping in (0,1), iterations and
/// num_samples >= 1).
Status ValidateRpCoSimOptions(const RpCoSimOptions& options);

/// A-priori per-entry error bound of the estimator: the Monte-Carlo
/// standard deviation of one score entry is at most sum_{k=1..K} c^k /
/// sqrt(d) = c (1 - c^K) / ((1 - c) sqrt(d)). This is the bound the
/// engine's AccuracyTag advertises; tests check measured average error
/// against it on the accuracy-bench fixtures.
double RpCoSimErrorBound(const RpCoSimOptions& options);

/// Multi-source estimate of [S]_{*,Q} (n x |Q|).
Result<DenseMatrix> RpCoSimMultiSource(const CsrMatrix& transition,
                                       const std::vector<Index>& queries,
                                       const RpCoSimOptions& options);

/// QueryEngine adapter over the estimator. Holds a pointer to the
/// transition matrix (which must outlive it). Two serving modes:
///
///  * Lazy (default, the historical paper-table mode): every query call
///    regenerates the Gaussian sketch and re-runs the K sparse
///    propagations. Zero resident state, maximal per-query cost.
///  * Hardened (after PrecomputeSketch()): the propagated sketches
///    W_1..W_K are materialised once, so a query runs only the dense
///    query-side GEMMs — the mode the serving tiers use. Bit-identical to
///    the lazy mode (same Rng stream, same floating-point operation order).
///
/// The fixed seed makes the estimator a deterministic function of
/// (transition, options), so the engine advertises a non-zero
/// StateFingerprint and its columns are cacheable in either mode.
class RpCosimEngine : public core::QueryEngine {
 public:
  RpCosimEngine(const CsrMatrix* transition, RpCoSimOptions options);

  /// Materialises W_1..W_K (budget-charged: K n d doubles resident plus an
  /// n x d transient). Idempotent; invalid options surface here as
  /// kInvalidArgument instead of per-query.
  Status PrecomputeSketch();

  /// True once PrecomputeSketch() has succeeded.
  bool sketch_ready() const { return !sketch_.empty(); }

  Result<DenseMatrix> MultiSourceQuery(
      const std::vector<Index>& queries) const override;
  Status SingleSourceQueryInto(Index query,
                               std::vector<double>* out) const override {
    return core::SingleSourceViaMultiSource(*this, query, out);
  }
  Index NumNodes() const override { return transition_->rows(); }
  std::string_view Name() const override { return "RP-CoSim"; }

  /// Non-zero identity over (transition content, damping, iterations,
  /// samples, seed). The estimator is deterministic given the seed and the
  /// lazy/hardened modes answer bit-identically, so equal fingerprints mean
  /// interchangeable columns (the column-cache contract).
  uint64_t StateFingerprint() const override;

  /// K dense rank-d products per query column: n (K d + 1) fused
  /// multiply-adds. In lazy mode the batch additionally pays the sketch
  /// build (Gaussian fill + K sparse propagations), amortised to zero by
  /// PrecomputeSketch — the hardened engine is what the cost model prices.
  core::CostModel EstimateCost(Index batch_queries) const override;

  /// Approximate, with the RpCoSimErrorBound per-entry bound.
  core::AccuracyTag Accuracy() const override {
    return core::AccuracyTag{core::AccuracyClass::kApproximate,
                             RpCoSimErrorBound(options_)};
  }

  const RpCoSimOptions& options() const { return options_; }

 private:
  const CsrMatrix* transition_;  // not owned
  RpCoSimOptions options_;
  uint64_t graph_hash_ = 0;      // content hash of *transition_
  int64_t graph_nnz_ = 0;
  std::vector<DenseMatrix> sketch_;  // W_1..W_K once hardened
};

}  // namespace csrplus::baselines

#endif  // CSRPLUS_BASELINES_RP_COSIM_H_
