// RP-CoSim (Renchi Yang, 2020) — randomized CoSimRank estimation via
// Gaussian random projections (Table 1 row 5; an extension baseline here).
//
// Uses E[G G^T / d] = I_n for a Gaussian sketch G (n x d):
//     S = sum_k c^k (Q^k)^T (Q^k)
//       ~ sum_k c^k W_k W_k^T / d,   W_k = (Q^k)^T G = Q^T W_{k-1}.
// The multi-source block needs only W_k and its query rows, so memory is
// O(n d) — but the estimate carries Monte-Carlo variance ~ 1/sqrt(d),
// unlike the deterministic rank-r truncation of CSR+. The ablation bench
// compares the two accuracy/time trade-offs directly.

#ifndef CSRPLUS_BASELINES_RP_COSIM_H_
#define CSRPLUS_BASELINES_RP_COSIM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/query_engine.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace csrplus::baselines {

using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Index;

/// Parameters of RP-CoSim.
struct RpCoSimOptions {
  double damping = 0.6;
  /// Series length K.
  int iterations = 5;
  /// Number of Gaussian samples d (variance ~ 1/sqrt(d)).
  Index num_samples = 200;
  uint64_t seed = 0x52504353ULL;
};

/// Multi-source estimate of [S]_{*,Q} (n x |Q|).
Result<DenseMatrix> RpCoSimMultiSource(const CsrMatrix& transition,
                                       const std::vector<Index>& queries,
                                       const RpCoSimOptions& options);

/// QueryEngine adapter. Holds a pointer to the transition matrix (which
/// must outlive it) and re-runs the sketch per query call; the fixed seed
/// makes repeated calls deterministic.
class RpCosimEngine : public core::QueryEngine {
 public:
  RpCosimEngine(const CsrMatrix* transition, RpCoSimOptions options)
      : transition_(transition), options_(options) {}

  Result<DenseMatrix> MultiSourceQuery(
      const std::vector<Index>& queries) const override {
    return RpCoSimMultiSource(*transition_, queries, options_);
  }
  Status SingleSourceQueryInto(Index query,
                               std::vector<double>* out) const override {
    return core::SingleSourceViaMultiSource(*this, query, out);
  }
  Index NumNodes() const override { return transition_->rows(); }
  std::string_view Name() const override { return "RP-CoSim"; }

 private:
  const CsrMatrix* transition_;  // not owned
  RpCoSimOptions options_;
};

}  // namespace csrplus::baselines

#endif  // CSRPLUS_BASELINES_RP_COSIM_H_
