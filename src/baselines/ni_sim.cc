#include "baselines/ni_sim.h"

#include <cmath>
#include <utility>

#include "common/memory.h"
#include "linalg/dense_ops.h"
#include "linalg/kron.h"
#include "linalg/lu.h"
#include "obs/trace.h"

namespace csrplus::baselines {
namespace {

// Faithful evaluation of G = (V (x) V)^T (U (x) U): materialises both
// tensor-product factors as n^2 x r^2 dense matrices — the published
// method's O(r^2 n^2) memory, and the footprint that makes NI the first
// method to exhaust memory as n or r grows (budget-guarded so the failure
// is a clean status) — then contracts them in O(r^4 n^2) time.
Result<DenseMatrix> FaithfulKroneckerGram(const DenseMatrix& v,
                                          const DenseMatrix& u) {
  const Index n = u.rows();
  const Index r = u.cols();
  const int64_t n2 = n * n;
  const Index r2 = r * r;
  CSR_RETURN_IF_ERROR(MemoryBudget::Global().TryReserve(
      2 * n2 * r2 * static_cast<int64_t>(sizeof(double)),
      "CSR-NI tensor products (n^2 x r^2 factors)"));

  // Row (a*n + b), column (i*r + j) of (V (x) V) is V[a,i] * V[b,j].
  const auto materialize = [n, r, r2](const DenseMatrix& m) {
    DenseMatrix out(static_cast<Index>(n) * n, r2);
    for (Index a = 0; a < n; ++a) {
      const double* row_a = m.RowPtr(a);
      for (Index b = 0; b < n; ++b) {
        const double* row_b = m.RowPtr(b);
        double* dst = out.RowPtr(a * n + b);
        for (Index i = 0; i < r; ++i) {
          const double ma = row_a[i];
          for (Index j = 0; j < r; ++j) dst[i * r + j] = ma * row_b[j];
        }
      }
    }
    return out;
  };
  const DenseMatrix vv = materialize(v);
  const DenseMatrix uu = materialize(u);
  return linalg::Gemm(vv, uu, linalg::Transpose::kYes, linalg::Transpose::kNo);
}

// Theorem 3.1 shortcut: G = Theta (x) Theta with Theta = V^T U.
Result<DenseMatrix> MixedProductKroneckerGram(const DenseMatrix& v,
                                              const DenseMatrix& u) {
  const DenseMatrix theta =
      linalg::Gemm(v, u, linalg::Transpose::kYes, linalg::Transpose::kNo);
  return linalg::KroneckerProduct(theta, theta);
}

}  // namespace

Result<NiSimEngine> NiSimEngine::Precompute(const CsrMatrix& transition,
                                            const NiSimOptions& options) {
  svd::SvdOptions svd_options = options.svd;
  svd_options.rank = options.rank;
  CSR_ASSIGN_OR_RETURN(svd::TruncatedSvd factors,
                       svd::ComputeTruncatedSvd(transition, svd_options));
  // Same factor convention as CsrPlusEngine: the published formulas hold for
  // the SVD of Q^T, i.e. with the standard factors of Q swapped (see the
  // derivation note in csrplus_engine.cc).
  std::swap(factors.u, factors.v);
  return PrecomputeFromFactors(factors, options);
}

Result<NiSimEngine> NiSimEngine::PrecomputeFromFactors(
    const svd::TruncatedSvd& factors, const NiSimOptions& options) {
  CSRPLUS_OBS_COUNTER_ADD("csrplus.baseline.ni_sim.precomputes", "calls",
                          "CSR-NI precompute invocations", 1);
  CSRPLUS_OBS_SCOPED_US("csrplus.baseline.ni_sim.precompute_us",
                        "CSR-NI precompute wall time");
  CSRPLUS_TRACE_SPAN_ARG(span, obs::spans::kBaseline, "rank", factors.rank());
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping factor must be in (0, 1)");
  }
  const Index r = factors.rank();
  for (double s : factors.sigma) {
    if (s <= 0.0) {
      return Status::NumericalError(
          "CSR-NI requires strictly positive singular values "
          "((Sigma (x) Sigma) must be invertible); reduce the rank");
    }
  }

  NiSimEngine engine;
  engine.u_ = factors.u;
  engine.v_ = factors.v;
  engine.sigma_ = factors.sigma;
  engine.damping_ = options.damping;

  // Gram tensor (V (x) V)^T (U (x) U).
  Result<DenseMatrix> gram =
      options.fidelity == NiFidelity::kFaithful
          ? FaithfulKroneckerGram(factors.v, factors.u)
          : MixedProductKroneckerGram(factors.v, factors.u);
  if (!gram.ok()) return gram.status();

  // Lambda = ((Sigma (x) Sigma)^{-1} - c G)^{-1}  (Eq. 6b).
  DenseMatrix m = std::move(*gram);
  linalg::ScaleInPlace(-options.damping, &m);
  for (Index i = 0; i < r; ++i) {
    for (Index j = 0; j < r; ++j) {
      m(i * r + j, i * r + j) +=
          1.0 / (factors.sigma[static_cast<std::size_t>(i)] *
                 factors.sigma[static_cast<std::size_t>(j)]);
    }
  }
  CSR_ASSIGN_OR_RETURN(linalg::LuFactorization lu,
                       linalg::LuFactorization::Compute(m));
  CSR_ASSIGN_OR_RETURN(engine.lambda_, lu.Inverse());
  return engine;
}

Result<DenseMatrix> NiSimEngine::MultiSourceQuery(
    const std::vector<Index>& queries) const {
  CSRPLUS_OBS_COUNTER_ADD("csrplus.baseline.ni_sim.queries", "calls",
                          "CSR-NI multi-source query invocations", 1);
  CSRPLUS_OBS_SCOPED_US("csrplus.baseline.ni_sim.query_us",
                        "CSR-NI multi-source query wall time");
  CSRPLUS_TRACE_SPAN_ARG(span, obs::spans::kBaseline, "num_queries",
                         static_cast<int64_t>(queries.size()));
  const Index n = num_nodes();
  const Index r = rank();
  CSR_RETURN_IF_ERROR(core::ValidateQueries(queries, n));
  CSR_RETURN_IF_ERROR(MemoryBudget::Global().TryReserve(
      n * static_cast<int64_t>(queries.size()) * sizeof(double),
      "CSR-NI multi-source output"));

  // w = (V (x) V)^T vec(I_n), computed as published (entry (i*r+j) is
  // sum_a V[a,i] V[a,j]) rather than via the Theorem 3.2 shortcut.
  std::vector<double> w(static_cast<std::size_t>(r * r), 0.0);
  for (Index i = 0; i < r; ++i) {
    for (Index j = 0; j < r; ++j) {
      double sum = 0.0;
      for (Index a = 0; a < n; ++a) sum += v_(a, i) * v_(a, j);
      w[static_cast<std::size_t>(i * r + j)] = sum;
    }
  }

  // y = Lambda w.
  const std::vector<double> y = linalg::MatVec(lambda_, w);

  // Row (x, q) of (U (x) U) dotted with y:
  // [S]_{x,q} = [I]_{x,q} + c sum_{i,j} U[x,i] U[q,j] y[(i*r)+j].
  DenseMatrix out(n, static_cast<Index>(queries.size()));
  for (std::size_t col = 0; col < queries.size(); ++col) {
    const Index q = queries[col];
    const double* uq = u_.RowPtr(q);
    // yq[i] = sum_j U[q,j] y[i*r + j] collapses the inner index per query.
    std::vector<double> yq(static_cast<std::size_t>(r), 0.0);
    for (Index i = 0; i < r; ++i) {
      double sum = 0.0;
      for (Index j = 0; j < r; ++j) {
        sum += uq[j] * y[static_cast<std::size_t>(i * r + j)];
      }
      yq[static_cast<std::size_t>(i)] = sum;
    }
    for (Index x = 0; x < n; ++x) {
      const double* ux = u_.RowPtr(x);
      double dot = 0.0;
      for (Index i = 0; i < r; ++i) dot += ux[i] * yq[static_cast<std::size_t>(i)];
      out(x, static_cast<Index>(col)) = damping_ * dot;
    }
    out(q, static_cast<Index>(col)) += 1.0;
  }
  return out;
}

}  // namespace csrplus::baselines
