#include "baselines/rp_cosim.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/memory.h"
#include "common/rng.h"
#include "core/csrplus_engine.h"
#include "linalg/dense_ops.h"
#include "obs/trace.h"

namespace csrplus::baselines {
namespace {

// FNV-1a 64 over a little sequence of u64 words; the same construction the
// CSR+ engine uses for its cacheable-state identity.
uint64_t HashU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Status ValidateRpCoSimOptions(const RpCoSimOptions& options) {
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping factor must be in (0, 1)");
  }
  if (options.iterations < 1 || options.num_samples < 1) {
    return Status::InvalidArgument("iterations and num_samples must be >= 1");
  }
  return Status::OK();
}

double RpCoSimErrorBound(const RpCoSimOptions& options) {
  // Per-entry Monte-Carlo standard deviation: each k >= 1 term is an
  // average of d products of (correlated) Gaussians with per-sample
  // variance O(1), so its deviation is <= c^k / sqrt(d); the k = 0 term is
  // exact. Summing the geometric tail gives the advertised bound.
  const double c = options.damping;
  const double k = static_cast<double>(options.iterations);
  const double d = static_cast<double>(options.num_samples);
  return c * (1.0 - std::pow(c, k)) / (1.0 - c) / std::sqrt(d);
}

Result<DenseMatrix> RpCoSimMultiSource(const CsrMatrix& transition,
                                       const std::vector<Index>& queries,
                                       const RpCoSimOptions& options) {
  CSRPLUS_OBS_COUNTER_ADD("csrplus.baseline.rp_cosim.queries", "calls",
                          "RP-CoSim multi-source query invocations", 1);
  CSRPLUS_OBS_SCOPED_US("csrplus.baseline.rp_cosim.query_us",
                        "RP-CoSim multi-source query wall time");
  CSRPLUS_TRACE_SPAN_ARG(span, obs::spans::kBaseline, "num_queries",
                         static_cast<int64_t>(queries.size()));
  CSR_RETURN_IF_ERROR(ValidateRpCoSimOptions(options));
  const Index n = transition.rows();
  const Index d = options.num_samples;
  CSR_RETURN_IF_ERROR(core::ValidateQueries(queries, n));
  CSR_RETURN_IF_ERROR(MemoryBudget::Global().TryReserve(
      (n * d + n * static_cast<int64_t>(queries.size())) *
          static_cast<int64_t>(sizeof(double)),
      "RP-CoSim sketch"));

  // W_0 = G; the k = 0 term c^0 W_0 W_0^T / d estimates I_n, but is exactly
  // I_n in expectation only — we use the exact identity for k = 0 (as the
  // published estimator does) and sketch the k >= 1 tail.
  Rng rng(options.seed);
  DenseMatrix w(n, d);
  for (Index i = 0; i < n; ++i) {
    double* row = w.RowPtr(i);
    for (Index j = 0; j < d; ++j) row[j] = rng.Gaussian();
  }

  DenseMatrix out(n, static_cast<Index>(queries.size()));
  const double inv_d = 1.0 / static_cast<double>(d);
  double ck = 1.0;
  for (int k = 1; k <= options.iterations; ++k) {
    w = transition.MultiplyTransposeDense(w);  // W_k = Q^T W_{k-1}
    ck *= options.damping;
    const DenseMatrix w_q = w.SelectRows(queries);  // |Q| x d
    // out += c^k / d * W_k W_q^T.
    DenseMatrix contrib = linalg::Gemm(w, w_q, linalg::Transpose::kNo,
                                       linalg::Transpose::kYes);
    linalg::AddScaled(ck * inv_d, contrib, &out);
  }
  for (std::size_t j = 0; j < queries.size(); ++j) {
    out(queries[j], static_cast<Index>(j)) += 1.0;  // exact k = 0 term
  }
  return out;
}

RpCosimEngine::RpCosimEngine(const CsrMatrix* transition,
                             RpCoSimOptions options)
    : transition_(transition), options_(options) {
  const core::GraphFingerprint fp = core::FingerprintTransition(*transition_);
  graph_hash_ = fp.content_hash;
  graph_nnz_ = fp.nnz;
}

Status RpCosimEngine::PrecomputeSketch() {
  if (!sketch_.empty()) return Status::OK();
  CSR_RETURN_IF_ERROR(ValidateRpCoSimOptions(options_));
  CSRPLUS_OBS_SCOPED_US("csrplus.baseline.rp_cosim.sketch_us",
                        "RP-CoSim hardened sketch precompute wall time");
  CSRPLUS_TRACE_SPAN_ARG(span, obs::spans::kBaseline, "num_samples",
                         static_cast<int64_t>(options_.num_samples));
  const Index n = transition_->rows();
  const Index d = options_.num_samples;
  const int64_t iterations = options_.iterations;
  // K resident propagated sketches plus the W_0 transient.
  CSR_RETURN_IF_ERROR(MemoryBudget::Global().TryReserve(
      (iterations + 1) * static_cast<int64_t>(n) * d *
          static_cast<int64_t>(sizeof(double)),
      "RP-CoSim hardened sketch"));

  // Exactly the lazy path's sketch: same Rng stream, same propagation
  // order, so queries from the stored W_k are bit-identical to re-deriving
  // them per call.
  Rng rng(options_.seed);
  DenseMatrix w(n, d);
  for (Index i = 0; i < n; ++i) {
    double* row = w.RowPtr(i);
    for (Index j = 0; j < d; ++j) row[j] = rng.Gaussian();
  }
  sketch_.reserve(static_cast<std::size_t>(iterations));
  for (int k = 1; k <= options_.iterations; ++k) {
    DenseMatrix next =
        transition_->MultiplyTransposeDense(k == 1 ? w : sketch_.back());
    sketch_.push_back(std::move(next));
  }
  return Status::OK();
}

Result<DenseMatrix> RpCosimEngine::MultiSourceQuery(
    const std::vector<Index>& queries) const {
  if (sketch_.empty()) {
    return RpCoSimMultiSource(*transition_, queries, options_);
  }
  CSRPLUS_OBS_COUNTER_ADD("csrplus.baseline.rp_cosim.queries", "calls",
                          "RP-CoSim multi-source query invocations", 1);
  CSRPLUS_OBS_SCOPED_US("csrplus.baseline.rp_cosim.query_us",
                        "RP-CoSim multi-source query wall time");
  CSRPLUS_TRACE_SPAN_ARG(span, obs::spans::kBaseline, "num_queries",
                         static_cast<int64_t>(queries.size()));
  const Index n = transition_->rows();
  CSR_RETURN_IF_ERROR(core::ValidateQueries(queries, n));
  const int64_t cols = static_cast<int64_t>(queries.size());
  // Output block plus the per-iteration contrib transient.
  CSR_RETURN_IF_ERROR(MemoryBudget::Global().TryReserve(
      2 * static_cast<int64_t>(n) * cols * static_cast<int64_t>(sizeof(double)),
      "RP-CoSim hardened query"));

  DenseMatrix out(n, static_cast<Index>(queries.size()));
  const double inv_d = 1.0 / static_cast<double>(options_.num_samples);
  double ck = 1.0;
  for (int k = 1; k <= options_.iterations; ++k) {
    const DenseMatrix& w = sketch_[static_cast<std::size_t>(k - 1)];
    ck *= options_.damping;
    const DenseMatrix w_q = w.SelectRows(queries);
    DenseMatrix contrib = linalg::Gemm(w, w_q, linalg::Transpose::kNo,
                                       linalg::Transpose::kYes);
    linalg::AddScaled(ck * inv_d, contrib, &out);
  }
  for (std::size_t j = 0; j < queries.size(); ++j) {
    out(queries[j], static_cast<Index>(j)) += 1.0;
  }
  return out;
}

uint64_t RpCosimEngine::StateFingerprint() const {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  h = HashU64(h, graph_hash_);
  h = HashU64(h, static_cast<uint64_t>(transition_->rows()));
  h = HashU64(h, static_cast<uint64_t>(graph_nnz_));
  uint64_t damping_bits = 0;
  static_assert(sizeof(damping_bits) == sizeof(options_.damping));
  std::memcpy(&damping_bits, &options_.damping, sizeof(damping_bits));
  h = HashU64(h, damping_bits);
  h = HashU64(h, static_cast<uint64_t>(options_.iterations));
  h = HashU64(h, static_cast<uint64_t>(options_.num_samples));
  h = HashU64(h, options_.seed);
  // 0 is reserved for "cannot vouch"; this engine always can.
  return h != 0 ? h : 0x9E3779B97F4A7C15ULL;
}

core::CostModel RpCosimEngine::EstimateCost(Index batch_queries) const {
  const double n = static_cast<double>(NumNodes());
  const double d = static_cast<double>(options_.num_samples);
  const double k = static_cast<double>(options_.iterations);
  const double per_query = n * (k * d + 1.0);
  double batch = per_query * static_cast<double>(batch_queries);
  if (sketch_.empty()) {
    // Lazy mode re-derives the sketch every call: the Gaussian fill plus K
    // sparse propagations at d multiply-adds per stored edge.
    batch += n * d + k * static_cast<double>(graph_nnz_) * d;
  }
  return core::CostModel{batch, per_query};
}

}  // namespace csrplus::baselines
