#include "baselines/rp_cosim.h"

#include "common/memory.h"
#include "common/rng.h"
#include "linalg/dense_ops.h"
#include "obs/trace.h"

namespace csrplus::baselines {

Result<DenseMatrix> RpCoSimMultiSource(const CsrMatrix& transition,
                                       const std::vector<Index>& queries,
                                       const RpCoSimOptions& options) {
  CSRPLUS_OBS_COUNTER_ADD("csrplus.baseline.rp_cosim.queries", "calls",
                          "RP-CoSim multi-source query invocations", 1);
  CSRPLUS_OBS_SCOPED_US("csrplus.baseline.rp_cosim.query_us",
                        "RP-CoSim multi-source query wall time");
  CSRPLUS_TRACE_SPAN_ARG(span, obs::spans::kBaseline, "num_queries",
                         static_cast<int64_t>(queries.size()));
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping factor must be in (0, 1)");
  }
  if (options.iterations < 1 || options.num_samples < 1) {
    return Status::InvalidArgument("iterations and num_samples must be >= 1");
  }
  const Index n = transition.rows();
  const Index d = options.num_samples;
  CSR_RETURN_IF_ERROR(core::ValidateQueries(queries, n));
  CSR_RETURN_IF_ERROR(MemoryBudget::Global().TryReserve(
      (n * d + n * static_cast<int64_t>(queries.size())) *
          static_cast<int64_t>(sizeof(double)),
      "RP-CoSim sketch"));

  // W_0 = G; the k = 0 term c^0 W_0 W_0^T / d estimates I_n, but is exactly
  // I_n in expectation only — we use the exact identity for k = 0 (as the
  // published estimator does) and sketch the k >= 1 tail.
  Rng rng(options.seed);
  DenseMatrix w(n, d);
  for (Index i = 0; i < n; ++i) {
    double* row = w.RowPtr(i);
    for (Index j = 0; j < d; ++j) row[j] = rng.Gaussian();
  }

  DenseMatrix out(n, static_cast<Index>(queries.size()));
  const double inv_d = 1.0 / static_cast<double>(d);
  double ck = 1.0;
  for (int k = 1; k <= options.iterations; ++k) {
    w = transition.MultiplyTransposeDense(w);  // W_k = Q^T W_{k-1}
    ck *= options.damping;
    const DenseMatrix w_q = w.SelectRows(queries);  // |Q| x d
    // out += c^k / d * W_k W_q^T.
    DenseMatrix contrib = linalg::Gemm(w, w_q, linalg::Transpose::kNo,
                                       linalg::Transpose::kYes);
    linalg::AddScaled(ck * inv_d, contrib, &out);
  }
  for (std::size_t j = 0; j < queries.size(); ++j) {
    out(queries[j], static_cast<Index>(j)) += 1.0;  // exact k = 0 term
  }
  return out;
}

}  // namespace csrplus::baselines
