// CSR-RLS — Kusumoto et al.'s (SIGMOD 2014) linearized single-source scheme
// applied query-by-query to CoSimRank, the way the paper benchmarks it.
//
// For the batch of queries E_Q (n x |Q| indicator columns), a forward pass
// stores V_k = Q^k E_Q for k = 0..K, then a Horner backward pass accumulates
//     [S]_{*,Q} = sum_k c^k (Q^T)^k V_k = U_0,
//     U_K = V_K,  U_k = V_k + c Q^T U_{k+1}.
//
// Nothing is shared across queries (each column repeats the same sparse
// products — the duplicate work of the paper's Example 1.1), so time grows
// linearly with |Q| (Fig. 5) and the stored forward iterates cost
// O(K n |Q|) memory, which is what makes CSR-RLS the last rival standing
// before CSR+ on medium graphs and a casualty on large ones (Figs. 6/8/9).

#ifndef CSRPLUS_BASELINES_RLS_H_
#define CSRPLUS_BASELINES_RLS_H_

#include <vector>

#include "common/status.h"
#include "core/query_engine.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace csrplus::baselines {

using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Index;

/// Parameters of the RLS baseline.
struct RlsOptions {
  double damping = 0.6;
  /// Series length K (the paper sets K = r for fairness).
  int iterations = 5;
};

/// One-shot multi-source evaluation (no reusable precomputed state — that is
/// the point of this baseline).
Result<DenseMatrix> RlsMultiSource(const CsrMatrix& transition,
                                   const std::vector<Index>& queries,
                                   const RlsOptions& options);

/// QueryEngine adapter. CSR-RLS keeps no precomputed state, so the engine
/// only holds a pointer to the transition matrix (which must outlive it)
/// and re-runs the forward/backward passes per query call.
class RlsEngine : public core::QueryEngine {
 public:
  RlsEngine(const CsrMatrix* transition, RlsOptions options)
      : transition_(transition), options_(options) {}

  Result<DenseMatrix> MultiSourceQuery(
      const std::vector<Index>& queries) const override {
    return RlsMultiSource(*transition_, queries, options_);
  }
  Status SingleSourceQueryInto(Index query,
                               std::vector<double>* out) const override {
    return core::SingleSourceViaMultiSource(*this, query, out);
  }
  Index NumNodes() const override { return transition_->rows(); }
  std::string_view Name() const override { return "CSR-RLS"; }

 private:
  const CsrMatrix* transition_;  // not owned
  RlsOptions options_;
};

}  // namespace csrplus::baselines

#endif  // CSRPLUS_BASELINES_RLS_H_
