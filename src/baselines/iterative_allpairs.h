// CSR-IT — the iterative CoSimRank baseline (Rothe & Schütze [6]) as the
// paper benchmarks it for multi-source search.
//
// Iterates the fixed point over the full dense similarity matrix:
//     S_0 = I_n,   S_{k+1} = c Q^T S_k Q + I_n,
// then answers any query set by selecting columns. Two properties the
// paper observes follow directly: its runtime is independent of |Q|
// ("orthogonal to |Q|", Fig. 5) and its O(n^2) memory makes it the first
// rival to fail as graphs grow (Figs. 5/6/8/9). Budget-guarded so the
// failure is a ResourceExhausted status, not an OOM kill.

#ifndef CSRPLUS_BASELINES_ITERATIVE_ALLPAIRS_H_
#define CSRPLUS_BASELINES_ITERATIVE_ALLPAIRS_H_

#include <vector>

#include "common/status.h"
#include "core/query_engine.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace csrplus::baselines {

using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Index;

/// Parameters of the iterative baseline.
struct IterativeOptions {
  double damping = 0.6;
  /// Number of fixed-point iterations k (the paper sets k = r for fairness).
  int iterations = 5;
};

/// All-pairs iterative engine.
class IterativeAllPairsEngine : public core::QueryEngine {
 public:
  /// Runs the k dense iterations (the "precompute"; everything happens here).
  static Result<IterativeAllPairsEngine> Precompute(
      const CsrMatrix& transition, const IterativeOptions& options);

  /// Selects the columns of the precomputed S for the query set.
  Result<DenseMatrix> MultiSourceQuery(
      const std::vector<Index>& queries) const override;

  /// Copies column q of the precomputed S into `out`.
  Status SingleSourceQueryInto(Index query,
                               std::vector<double>* out) const override;

  /// The full similarity matrix.
  const DenseMatrix& similarity() const { return s_; }

  Index NumNodes() const override { return s_.rows(); }
  std::string_view Name() const override { return "CSR-IT"; }

 private:
  IterativeAllPairsEngine() = default;
  DenseMatrix s_;
};

}  // namespace csrplus::baselines

#endif  // CSRPLUS_BASELINES_ITERATIVE_ALLPAIRS_H_
