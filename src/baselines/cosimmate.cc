#include "baselines/cosimmate.h"

#include "common/memory.h"
#include "linalg/dense_ops.h"
#include "obs/trace.h"

namespace csrplus::baselines {

Result<DenseMatrix> CoSimMateAllPairs(const CsrMatrix& transition,
                                      const CoSimMateOptions& options) {
  CSRPLUS_OBS_COUNTER_ADD("csrplus.baseline.cosimmate.all_pairs", "calls",
                          "CoSimMate all-pairs invocations", 1);
  CSRPLUS_OBS_SCOPED_US("csrplus.baseline.cosimmate.all_pairs_us",
                        "CoSimMate all-pairs wall time");
  CSRPLUS_TRACE_SPAN_ARG(span, obs::spans::kBaseline, "n", transition.rows());
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping factor must be in (0, 1)");
  }
  if (options.squaring_steps < 1) {
    return Status::InvalidArgument("squaring_steps must be >= 1");
  }
  const Index n = transition.rows();
  // S, T and a product buffer — three dense n x n alive at the peak.
  CSR_RETURN_IF_ERROR(MemoryBudget::Global().TryReserve(
      3 * n * n * static_cast<int64_t>(sizeof(double)),
      "CoSimMate squared iterates"));

  DenseMatrix s = DenseMatrix::Identity(n);
  DenseMatrix t = transition.ToDense();
  double c_pow = options.damping;  // c^{2^t} for t = 0.
  for (int step = 0; step < options.squaring_steps; ++step) {
    // S <- S + c^{2^t} T^T S T.
    DenseMatrix ts = linalg::Gemm(t, s, linalg::Transpose::kYes,
                                  linalg::Transpose::kNo);  // T^T S
    DenseMatrix tst = linalg::Gemm(ts, t);                  // T^T S T
    linalg::AddScaled(c_pow, tst, &s);
    if (step + 1 < options.squaring_steps) {
      t = linalg::Gemm(t, t);  // T <- T^2 (densifies)
      c_pow *= c_pow;
    }
  }
  return s;
}

Result<DenseMatrix> CoSimMateMultiSource(const CsrMatrix& transition,
                                         const std::vector<Index>& queries,
                                         const CoSimMateOptions& options) {
  CSRPLUS_OBS_COUNTER_ADD("csrplus.baseline.cosimmate.queries", "calls",
                          "CoSimMate multi-source query invocations", 1);
  if (queries.empty()) {
    return Status::InvalidArgument("query set is empty");
  }
  CSR_ASSIGN_OR_RETURN(DenseMatrix s, CoSimMateAllPairs(transition, options));
  const Index n = s.rows();
  CSR_RETURN_IF_ERROR(core::ValidateQueries(queries, n));
  DenseMatrix out(n, static_cast<Index>(queries.size()));
  for (std::size_t j = 0; j < queries.size(); ++j) {
    const Index q = queries[j];
    for (Index i = 0; i < n; ++i) out(i, static_cast<Index>(j)) = s(i, q);
  }
  return out;
}

Result<CoSimMateEngine> CoSimMateEngine::Precompute(
    const CsrMatrix& transition, const CoSimMateOptions& options) {
  CoSimMateEngine engine;
  CSR_ASSIGN_OR_RETURN(engine.s_, CoSimMateAllPairs(transition, options));
  return engine;
}

Result<DenseMatrix> CoSimMateEngine::MultiSourceQuery(
    const std::vector<Index>& queries) const {
  const Index n = s_.rows();
  CSR_RETURN_IF_ERROR(core::ValidateQueries(queries, n));
  DenseMatrix out(n, static_cast<Index>(queries.size()));
  for (std::size_t j = 0; j < queries.size(); ++j) {
    const Index q = queries[j];
    for (Index i = 0; i < n; ++i) out(i, static_cast<Index>(j)) = s_(i, q);
  }
  return out;
}

Status CoSimMateEngine::SingleSourceQueryInto(Index query,
                                              std::vector<double>* out) const {
  const Index n = s_.rows();
  CSR_RETURN_IF_ERROR(core::ValidateQueries({query}, n));
  out->resize(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    (*out)[static_cast<std::size_t>(i)] = s_(i, query);
  }
  return Status::OK();
}

}  // namespace csrplus::baselines
