#include "obs/trace.h"

#include <memory>
#include <mutex>
#include <vector>

#include "common/memory.h"
#include "common/strings.h"

namespace csrplus::obs {
namespace {

// One ring per thread. `next` is a monotonic write cursor; the event at
// logical index i lives in events[i % kRingCapacity], so the buffer always
// holds the most recent min(next, kRingCapacity) events.
struct ThreadBuffer {
  TraceEvent events[kRingCapacity];
  std::atomic<uint64_t> next{0};
  int32_t tid = 0;
};

struct Tracer {
  std::mutex mu;  // guards `buffers` (registration + dump); never on record
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::atomic<uint64_t> dropped{0};

  ThreadBuffer* RegisterThread() {
    std::lock_guard<std::mutex> lock(mu);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<int32_t>(buffers.size());
    buffers.push_back(std::move(buffer));
    return buffers.back().get();
  }
};

Tracer& GlobalTracer() {
  // Leaked: pool workers may record while statics are being destroyed.
  static Tracer* tracer = new Tracer;
  return *tracer;
}

thread_local ThreadBuffer* tls_buffer = nullptr;
thread_local int32_t tls_depth = 0;

ThreadBuffer* Buffer() {
  if (tls_buffer == nullptr) tls_buffer = GlobalTracer().RegisterThread();
  return tls_buffer;
}

}  // namespace

TraceSpan::TraceSpan(const char* name) {
  if (!TracingEnabled()) return;
  active_ = true;
  event_.name = name;
  event_.depth = tls_depth++;
  mem_start_bytes_ = GetTrackedMemory().current_bytes;
  event_.start_us = NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  event_.dur_us = NowMicros() - event_.start_us;
  event_.mem_delta_bytes = GetTrackedMemory().current_bytes - mem_start_bytes_;
  --tls_depth;
  ThreadBuffer* buffer = Buffer();
  event_.tid = buffer->tid;
  const uint64_t slot = buffer->next.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kRingCapacity) {
    GlobalTracer().dropped.fetch_add(1, std::memory_order_relaxed);
  }
  buffer->events[slot % kRingCapacity] = event_;
}

void TraceSpan::AddArg(const char* key, int64_t value) {
  if (!active_) return;
  for (int i = 0; i < TraceEvent::kMaxArgs; ++i) {
    if (event_.arg_key[i] == nullptr) {
      event_.arg_key[i] = key;
      event_.arg_value[i] = value;
      return;
    }
  }
}

uint64_t TraceDroppedEvents() {
  return GlobalTracer().dropped.load(std::memory_order_relaxed);
}

void ClearTraceBuffers() {
  Tracer& tracer = GlobalTracer();
  std::lock_guard<std::mutex> lock(tracer.mu);
  for (auto& buffer : tracer.buffers) {
    buffer->next.store(0, std::memory_order_relaxed);
  }
  tracer.dropped.store(0, std::memory_order_relaxed);
}

std::string DumpTraceJson() {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  Tracer& tracer = GlobalTracer();
  std::lock_guard<std::mutex> lock(tracer.mu);
  bool first = true;
  for (const auto& buffer : tracer.buffers) {
    const uint64_t next = buffer->next.load(std::memory_order_acquire);
    const uint64_t count =
        next < kRingCapacity ? next : static_cast<uint64_t>(kRingCapacity);
    for (uint64_t i = next - count; i < next; ++i) {
      const TraceEvent& e = buffer->events[i % kRingCapacity];
      out += StrPrintf(
          "%s\n  {\"name\": \"%s\", \"cat\": \"csrplus\", \"ph\": \"X\", "
          "\"ts\": %llu, \"dur\": %llu, \"pid\": 1, \"tid\": %d, "
          "\"args\": {\"depth\": %d, \"mem_delta_bytes\": %lld",
          first ? "" : ",", e.name, static_cast<unsigned long long>(e.start_us),
          static_cast<unsigned long long>(e.dur_us), e.tid, e.depth,
          static_cast<long long>(e.mem_delta_bytes));
      for (int a = 0; a < TraceEvent::kMaxArgs; ++a) {
        if (e.arg_key[a] != nullptr) {
          out += StrPrintf(", \"%s\": %lld", e.arg_key[a],
                           static_cast<long long>(e.arg_value[a]));
        }
      }
      out += "}}";
      first = false;
    }
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace csrplus::obs
