#include "obs/stats.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <variant>

#include "common/env.h"
#include "common/memory.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace csrplus::obs {
namespace {

using Clock = std::chrono::steady_clock;

// Runtime toggles, initialised once from CSRPLUS_STATS:
//   "0" / "off"          -> no recording at all
//   "1" / "on" / unset   -> counters/gauges/histograms
//   "trace"              -> metrics + span tracing
struct RuntimeToggles {
  std::atomic<bool> metrics{true};
  std::atomic<bool> tracing{false};
  RuntimeToggles() {
    const std::string v = GetEnvString("CSRPLUS_STATS", "1");
    if (v == "0" || v == "off") {
      metrics.store(false, std::memory_order_relaxed);
    } else if (v == "trace") {
      tracing.store(true, std::memory_order_relaxed);
    }
  }
};

RuntimeToggles& Toggles() {
  static RuntimeToggles* toggles = new RuntimeToggles;  // leaked: see stats.h
  return *toggles;
}

Clock::time_point Epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Minimal JSON string escaping; metric names/units/help are controlled
// ASCII identifiers, but keep the output valid for any input.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool MetricsEnabled() {
  return Toggles().metrics.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  Toggles().metrics.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return Toggles().tracing.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  Toggles().tracing.store(enabled, std::memory_order_relaxed);
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            Epoch())
          .count());
}

void Init() {
  (void)Epoch();
  (void)Toggles();
  (void)StatsRegistry::Global();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

struct StatsRegistry::Impl {
  struct CallbackGauge {
    std::string unit;
    std::string help;
    std::function<int64_t()> fn;
  };
  template <typename M>
  struct Entry {
    std::string unit;
    std::string help;
    std::unique_ptr<M> metric;
  };

  mutable std::mutex mu;
  // std::map: stable iteration order, pointers never invalidated.
  std::map<std::string, Entry<Counter>, std::less<>> counters;
  std::map<std::string, Entry<Gauge>, std::less<>> gauges;
  std::map<std::string, Entry<Histogram>, std::less<>> histograms;
  std::map<std::string, CallbackGauge, std::less<>> callback_gauges;

  template <typename M>
  M* FindOrCreate(std::map<std::string, Entry<M>, std::less<>>* metrics,
                  std::string_view name, std::string_view unit,
                  std::string_view help) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = metrics->find(name);
    if (it == metrics->end()) {
      it = metrics
               ->emplace(std::string(name),
                         Entry<M>{std::string(unit), std::string(help),
                                  std::make_unique<M>()})
               .first;
    }
    return it->second.metric.get();
  }
};

StatsRegistry::StatsRegistry() : impl_(new Impl) {
#if !defined(CSRPLUS_OBS_DISABLED)
  // Memory visibility rides on what other subsystems already track; these
  // read at snapshot time instead of double-counting.
  RegisterCallbackGauge(
      "csrplus.mem.tracked_current_bytes", "bytes",
      "bytes currently allocated (0 unless the new/delete hooks are linked)",
      [] { return GetTrackedMemory().current_bytes; });
  RegisterCallbackGauge(
      "csrplus.mem.tracked_peak_bytes", "bytes",
      "tracked-allocation high-water mark since the last reset",
      [] { return GetTrackedMemory().peak_bytes; });
  RegisterCallbackGauge("csrplus.mem.rss_current_bytes", "bytes",
                        "resident set size (VmRSS)",
                        [] { return CurrentRssBytes(); });
  RegisterCallbackGauge("csrplus.mem.rss_peak_bytes", "bytes",
                        "peak resident set size (VmHWM)",
                        [] { return PeakRssBytes(); });
  RegisterCallbackGauge("csrplus.mem.budget_limit_bytes", "bytes",
                        "process-wide memory budget cap",
                        [] { return MemoryBudget::Global().limit_bytes(); });
  RegisterCallbackGauge(
      "csrplus.trace.dropped_events", "events",
      "trace events lost to per-thread ring buffer overwrites",
      [] { return static_cast<int64_t>(TraceDroppedEvents()); });
#endif
}

StatsRegistry& StatsRegistry::Global() {
  // Leaked: instrumentation may run during static destruction (pool workers
  // join at exit) and must never observe a destroyed registry.
  static StatsRegistry* registry = new StatsRegistry;
  return *registry;
}

Counter* StatsRegistry::FindOrCreateCounter(std::string_view name,
                                            std::string_view unit,
                                            std::string_view help) {
  return impl_->FindOrCreate(&impl_->counters, name, unit, help);
}

Gauge* StatsRegistry::FindOrCreateGauge(std::string_view name,
                                        std::string_view unit,
                                        std::string_view help) {
  return impl_->FindOrCreate(&impl_->gauges, name, unit, help);
}

Histogram* StatsRegistry::FindOrCreateHistogram(std::string_view name,
                                                std::string_view unit,
                                                std::string_view help) {
  return impl_->FindOrCreate(&impl_->histograms, name, unit, help);
}

void StatsRegistry::RegisterCallbackGauge(std::string_view name,
                                          std::string_view unit,
                                          std::string_view help,
                                          std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->callback_gauges.emplace(
      std::string(name),
      Impl::CallbackGauge{std::string(unit), std::string(help), std::move(fn)});
}

std::vector<std::string> StatsRegistry::Names() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& [name, entry] : impl_->counters) names.push_back(name);
    for (const auto& [name, entry] : impl_->gauges) names.push_back(name);
    for (const auto& [name, entry] : impl_->histograms) names.push_back(name);
    for (const auto& [name, cb] : impl_->callback_gauges) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string StatsRegistry::SnapshotJson() const {
  // Callback gauges run outside the lock (they may touch other subsystems);
  // collect them first.
  std::vector<std::pair<std::string, int64_t>> callback_values;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    callback_values.reserve(impl_->callback_gauges.size());
    for (const auto& [name, cb] : impl_->callback_gauges) {
      callback_values.emplace_back(name, 0);
    }
  }
  for (auto& [name, value] : callback_values) {
    std::function<int64_t()> fn;
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      fn = impl_->callback_gauges.find(name)->second.fn;
    }
    value = fn ? fn() : 0;
  }

  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out;
  out += StrPrintf("{\n  \"version\": 1,\n  \"uptime_us\": %llu,\n",
                   static_cast<unsigned long long>(NowMicros()));

  out += "  \"counters\": [";
  bool first = true;
  for (const auto& [name, entry] : impl_->counters) {
    out += StrPrintf(
        "%s\n    {\"name\": \"%s\", \"unit\": \"%s\", \"help\": \"%s\", "
        "\"value\": %llu}",
        first ? "" : ",", JsonEscape(name).c_str(),
        JsonEscape(entry.unit).c_str(), JsonEscape(entry.help).c_str(),
        static_cast<unsigned long long>(entry.metric->value()));
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  first = true;
  auto emit_gauge = [&](const std::string& name, const std::string& unit,
                        const std::string& help, int64_t value) {
    out += StrPrintf(
        "%s\n    {\"name\": \"%s\", \"unit\": \"%s\", \"help\": \"%s\", "
        "\"value\": %lld}",
        first ? "" : ",", JsonEscape(name).c_str(), JsonEscape(unit).c_str(),
        JsonEscape(help).c_str(), static_cast<long long>(value));
    first = false;
  };
  for (const auto& [name, entry] : impl_->gauges) {
    emit_gauge(name, entry.unit, entry.help, entry.metric->value());
  }
  for (const auto& [name, value] : callback_values) {
    const auto& cb = impl_->callback_gauges.find(name)->second;
    emit_gauge(name, cb.unit, cb.help, value);
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  first = true;
  for (const auto& [name, entry] : impl_->histograms) {
    const Histogram& h = *entry.metric;
    out += StrPrintf(
        "%s\n    {\"name\": \"%s\", \"unit\": \"%s\", \"help\": \"%s\", "
        "\"count\": %llu, \"sum\": %llu, \"buckets\": [",
        first ? "" : ",", JsonEscape(name).c_str(),
        JsonEscape(entry.unit).c_str(), JsonEscape(entry.help).c_str(),
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.sum()));
    // Sparse emission: only non-empty buckets (the layout is fixed and
    // documented, so empty buckets carry no information).
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t c = h.bucket_count(i);
      if (c == 0) continue;
      if (i < Histogram::kNumFiniteBuckets) {
        out += StrPrintf("%s{\"le\": %llu, \"count\": %llu}",
                         first_bucket ? "" : ", ",
                         static_cast<unsigned long long>(
                             Histogram::BucketUpperBound(i)),
                         static_cast<unsigned long long>(c));
      } else {
        out += StrPrintf("%s{\"le\": \"+Inf\", \"count\": %llu}",
                         first_bucket ? "" : ", ",
                         static_cast<unsigned long long>(c));
      }
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void StatsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, entry] : impl_->counters) entry.metric->Reset();
  for (auto& [name, entry] : impl_->gauges) entry.metric->Reset();
  for (auto& [name, entry] : impl_->histograms) entry.metric->Reset();
}

}  // namespace csrplus::obs
