// Process-wide observability: a thread-safe registry of monotonic counters,
// gauges and fixed-bucket histograms with lock-free hot paths.
//
// The paper's entire evaluation (Sec. 5, Figs. 2-9) is a phase and memory
// breakdown; this module makes the same breakdown a first-class runtime
// surface instead of something only the bench harness can see. Design:
//
//  * Metrics are registered lazily on first use and live forever (the
//    registry is a leaked singleton, so instrumented code in static
//    destructors and pool workers can never touch a dead object).
//  * Registration takes a mutex (cold path, once per call site via a
//    function-local static); recording is a single relaxed atomic RMW.
//  * Histograms use one fixed power-of-two bucket layout (le = 2^i for
//    i = 0..47, plus overflow) shared by every histogram, so bucket
//    boundaries are stable across builds and directly comparable.
//  * Runtime toggle: the CSRPLUS_STATS environment variable ("0"/"off"
//    disables recording, "1"/"on" enables metrics, "trace" additionally
//    enables span tracing — see obs/trace.h) or SetMetricsEnabled().
//  * Compile-time kill switch: building with -DCSRPLUS_OBS_DISABLED turns
//    every CSRPLUS_OBS_* / CSRPLUS_TRACE_* hook into nothing, so the
//    instrumented hot paths are bit-identical to uninstrumented code. The
//    registry API itself stays available (snapshots are just empty).
//
// Naming convention: dot-separated lowercase, "csrplus.<area>.<metric>",
// with the unit as a suffix where one applies (_us, _bytes). Every name
// emitted at runtime must be documented in docs/observability.md — a test
// (tests/obs_test.cc) diffs the registry against the doc.

#ifndef CSRPLUS_OBS_STATS_H_
#define CSRPLUS_OBS_STATS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace csrplus::obs {

/// Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (level, size, high-water mark). Lock-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if `v` is larger (lock-free max).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram of non-negative integer samples (latencies in
/// microseconds, sizes in bytes). Bucket i (0 <= i < kNumFiniteBuckets)
/// counts samples with value <= 2^i that did not fit an earlier bucket;
/// the final bucket counts everything above 2^47. Recording is three
/// relaxed atomic adds (bucket, count, sum).
class Histogram {
 public:
  static constexpr int kNumFiniteBuckets = 48;
  static constexpr int kNumBuckets = kNumFiniteBuckets + 1;  // + overflow

  /// Upper bound of finite bucket i: 2^i.
  static constexpr uint64_t BucketUpperBound(int i) { return uint64_t{1} << i; }

  /// Index of the bucket a sample lands in.
  static int BucketIndex(uint64_t value) {
    if (value <= 1) return 0;
    const int width = std::bit_width(value - 1);  // smallest i: 2^i >= value
    return width < kNumFiniteBuckets ? width : kNumFiniteBuckets;
  }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// True when runtime metric recording is on (CSRPLUS_STATS != "0"/"off").
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Microseconds since the process observability epoch (first obs use, or
/// the explicit Init() call). Monotonic.
uint64_t NowMicros();

/// Pins the observability epoch to "now". Call early in main() so snapshot
/// uptime covers the whole run; harmless to skip (the epoch then starts at
/// first metric/span use).
void Init();

/// The process-wide metric registry.
class StatsRegistry {
 public:
  /// The leaked process-wide instance.
  static StatsRegistry& Global();

  /// Returns the metric registered under `name`, creating it on first use.
  /// `unit` and `help` are recorded on creation and ignored afterwards.
  /// The returned pointer is valid for the process lifetime; call sites
  /// should cache it (the CSRPLUS_OBS_* macros do) — lookup takes a mutex.
  Counter* FindOrCreateCounter(std::string_view name, std::string_view unit,
                               std::string_view help);
  Gauge* FindOrCreateGauge(std::string_view name, std::string_view unit,
                           std::string_view help);
  Histogram* FindOrCreateHistogram(std::string_view name,
                                   std::string_view unit,
                                   std::string_view help);

  /// Registers a gauge whose value is produced by `fn` at snapshot time
  /// (for values another subsystem already tracks, e.g. RSS or the tracked
  /// allocation counters — no double accounting). Idempotent per name.
  void RegisterCallbackGauge(std::string_view name, std::string_view unit,
                             std::string_view help,
                             std::function<int64_t()> fn);

  /// All registered metric names, sorted.
  std::vector<std::string> Names() const;

  /// JSON snapshot of every registered metric; schema documented in
  /// docs/observability.md ("Stats snapshot schema") and validated by
  /// tests/obs_test.cc.
  std::string SnapshotJson() const;

  /// Zeroes every counter/gauge/histogram (callback gauges are untouched).
  /// For tests and long-lived processes that window their stats.
  void ResetValues();

  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

 private:
  StatsRegistry();
  struct Impl;
  Impl* impl_;  // leaked with the registry
};

/// RAII stopwatch recording its scope's duration (µs) into a histogram on
/// destruction. Used via CSRPLUS_OBS_SCOPED_US below.
class ScopedDurationUs {
 public:
  explicit ScopedDurationUs(Histogram* h) : histogram_(h), start_(NowMicros()) {}
  ~ScopedDurationUs() {
    if (MetricsEnabled()) histogram_->Record(NowMicros() - start_);
  }
  ScopedDurationUs(const ScopedDurationUs&) = delete;
  ScopedDurationUs& operator=(const ScopedDurationUs&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_;
};

}  // namespace csrplus::obs

// ---------------------------------------------------------------------------
// Hot-path hooks. Each caches its metric pointer in a function-local static
// (one registry lookup per call site per process) and is compiled out
// entirely under CSRPLUS_OBS_DISABLED.

#if defined(CSRPLUS_OBS_DISABLED)

#define CSRPLUS_OBS_COUNTER_ADD(name, unit, help, delta) \
  do {                                                   \
  } while (0)
#define CSRPLUS_OBS_GAUGE_SET(name, unit, help, value) \
  do {                                                 \
  } while (0)
#define CSRPLUS_OBS_GAUGE_SET_MAX(name, unit, help, value) \
  do {                                                     \
  } while (0)
#define CSRPLUS_OBS_HISTOGRAM_RECORD(name, unit, help, value) \
  do {                                                        \
  } while (0)
#define CSRPLUS_OBS_SCOPED_US(name, help)

#else  // !CSRPLUS_OBS_DISABLED

#define CSRPLUS_OBS_COUNTER_ADD(name, unit, help, delta)            \
  do {                                                              \
    if (::csrplus::obs::MetricsEnabled()) {                         \
      static ::csrplus::obs::Counter* _csr_obs_c =                  \
          ::csrplus::obs::StatsRegistry::Global().FindOrCreateCounter( \
              name, unit, help);                                    \
      _csr_obs_c->Add(delta);                                       \
    }                                                               \
  } while (0)

#define CSRPLUS_OBS_GAUGE_SET(name, unit, help, value)            \
  do {                                                            \
    if (::csrplus::obs::MetricsEnabled()) {                       \
      static ::csrplus::obs::Gauge* _csr_obs_g =                  \
          ::csrplus::obs::StatsRegistry::Global().FindOrCreateGauge( \
              name, unit, help);                                  \
      _csr_obs_g->Set(value);                                     \
    }                                                             \
  } while (0)

#define CSRPLUS_OBS_GAUGE_SET_MAX(name, unit, help, value)        \
  do {                                                            \
    if (::csrplus::obs::MetricsEnabled()) {                       \
      static ::csrplus::obs::Gauge* _csr_obs_g =                  \
          ::csrplus::obs::StatsRegistry::Global().FindOrCreateGauge( \
              name, unit, help);                                  \
      _csr_obs_g->SetMax(value);                                  \
    }                                                             \
  } while (0)

#define CSRPLUS_OBS_HISTOGRAM_RECORD(name, unit, help, value)         \
  do {                                                                \
    if (::csrplus::obs::MetricsEnabled()) {                           \
      static ::csrplus::obs::Histogram* _csr_obs_h =                  \
          ::csrplus::obs::StatsRegistry::Global().FindOrCreateHistogram( \
              name, unit, help);                                      \
      _csr_obs_h->Record(value);                                      \
    }                                                                 \
  } while (0)

// Times the rest of the enclosing scope into a "_us" histogram. The static
// lookup runs unconditionally (cheap after the first call); the record is
// skipped when metrics are disabled.
#define CSRPLUS_OBS_SCOPED_US(name, help)                          \
  static ::csrplus::obs::Histogram* _csr_obs_scoped_h =            \
      ::csrplus::obs::StatsRegistry::Global().FindOrCreateHistogram( \
          name, "us", help);                                       \
  ::csrplus::obs::ScopedDurationUs _csr_obs_scoped_timer(_csr_obs_scoped_h)

#endif  // CSRPLUS_OBS_DISABLED

#endif  // CSRPLUS_OBS_STATS_H_
