// Lightweight scoped-span phase tracer.
//
// A TraceSpan records a named phase (normalize, svd, repeated_squaring,
// z_memoise, query, artifact_load, ...) into a per-thread ring buffer:
// construction takes a timestamp, destruction appends one complete event
// (name, start, duration, thread, nesting depth, args). Recording never
// takes a lock — buffers are thread-local and registered with the tracer
// once per thread; parent/child nesting is a thread-local depth counter.
//
// Tracing is off by default (spans are two relaxed loads and a branch);
// enable it with SetTracingEnabled(true), the --trace-out CLI flag, or
// CSRPLUS_STATS=trace. Each thread buffers the most recent kRingCapacity
// events (older ones are overwritten; the drop count is reported).
//
// DumpTraceJson() emits the Chrome trace event format — load the file at
// chrome://tracing or https://ui.perfetto.dev. Schema documented in
// docs/observability.md ("Trace dump schema").

#ifndef CSRPLUS_OBS_TRACE_H_
#define CSRPLUS_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "obs/stats.h"

namespace csrplus::obs {

/// The span taxonomy. Instrumentation must use these constants (or document
/// any addition in docs/observability.md — the taxonomy is part of the ops
/// surface, and tests diff it against the doc).
namespace spans {
inline constexpr const char kGraphLoad[] = "graph_load";
inline constexpr const char kNormalize[] = "normalize";
inline constexpr const char kFingerprint[] = "fingerprint";
inline constexpr const char kSvd[] = "svd";
inline constexpr const char kPrecompute[] = "precompute";
inline constexpr const char kRepeatedSquaring[] = "repeated_squaring";
inline constexpr const char kZMemoise[] = "z_memoise";
inline constexpr const char kQuery[] = "query";
inline constexpr const char kTopKSelect[] = "topk_select";
inline constexpr const char kArtifactLoad[] = "artifact_load";
inline constexpr const char kArtifactSave[] = "artifact_save";
inline constexpr const char kPoolRegion[] = "pool_region";
inline constexpr const char kBaseline[] = "baseline";
inline constexpr const char kServiceBatch[] = "service_batch";
inline constexpr const char kServiceRequest[] = "service_request";
inline constexpr const char kCacheLookup[] = "cache_lookup";
inline constexpr const char kCacheInsert[] = "cache_insert";
inline constexpr const char kNetRead[] = "net_read";
inline constexpr const char kNetDispatch[] = "net_dispatch";
inline constexpr const char kNetWrite[] = "net_write";
inline constexpr const char kTierRoute[] = "tier_route";
}  // namespace spans

/// True when span recording is on.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// One completed span. Names and arg keys must be string literals (the
/// event stores the pointer, not a copy).
struct TraceEvent {
  static constexpr int kMaxArgs = 2;
  const char* name = nullptr;
  const char* arg_key[kMaxArgs] = {nullptr, nullptr};
  int64_t arg_value[kMaxArgs] = {0, 0};
  uint64_t start_us = 0;  ///< µs since the observability epoch
  uint64_t dur_us = 0;
  int64_t mem_delta_bytes = 0;  ///< tracked-alloc delta over the span (0 if
                                ///< the memory hooks are not linked)
  int32_t tid = 0;   ///< dense per-buffer thread id, assigned at registration
  int32_t depth = 0; ///< nesting depth at span start (0 = top level)
};

/// RAII span. Cheap no-op when tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  /// Attaches a small integer annotation (rank, n, |Q|, bytes...). At most
  /// TraceEvent::kMaxArgs per span; extras are dropped. `key` must be a
  /// string literal.
  void AddArg(const char* key, int64_t value);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceEvent event_;  // staged; appended to the ring on destruction
  int64_t mem_start_bytes_ = 0;
  bool active_ = false;
};

/// Per-thread ring capacity (events). Oldest events are overwritten.
inline constexpr int kRingCapacity = 4096;

/// Total events dropped to ring overwrites across all threads.
uint64_t TraceDroppedEvents();

/// Serialises every buffered span as a Chrome trace ("traceEvents" array of
/// "ph":"X" complete events, timestamps in µs since the obs epoch). Safe to
/// call any time; spans still open are simply absent. Concurrent recording
/// during a dump may miss the very latest events but is memory-safe.
std::string DumpTraceJson();

/// Discards all buffered events (buffers stay registered). For tests.
void ClearTraceBuffers();

}  // namespace csrplus::obs

// Scoped-span hooks, compiled out under CSRPLUS_OBS_DISABLED. The _ARG
// forms must not evaluate their value expressions when disabled-at-compile
// -time; keep those expressions side-effect free.
#if defined(CSRPLUS_OBS_DISABLED)
#define CSRPLUS_TRACE_SPAN(var, name)
#define CSRPLUS_TRACE_SPAN_ARG(var, name, key, value)
#define CSRPLUS_TRACE_ARG(var, key, value) \
  do {                                     \
  } while (0)
#else
#define CSRPLUS_TRACE_SPAN(var, name) ::csrplus::obs::TraceSpan var(name)
#define CSRPLUS_TRACE_SPAN_ARG(var, name, key, value) \
  ::csrplus::obs::TraceSpan var(name);                \
  var.AddArg(key, value)
#define CSRPLUS_TRACE_ARG(var, key, value) var.AddArg(key, value)
#endif

#endif  // CSRPLUS_OBS_TRACE_H_
