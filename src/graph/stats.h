// Summary statistics over a graph; used by dataset registration and tests.

#ifndef CSRPLUS_GRAPH_STATS_H_
#define CSRPLUS_GRAPH_STATS_H_

#include <string>

#include "graph/graph.h"

namespace csrplus::graph {

/// Degree and size summary of a graph.
struct GraphStats {
  Index num_nodes = 0;
  int64_t num_edges = 0;
  double avg_degree = 0.0;     ///< m / n.
  Index max_out_degree = 0;
  Index max_in_degree = 0;
  Index num_dangling_in = 0;   ///< nodes with in-degree 0 (zero columns of Q).
  Index num_dangling_out = 0;  ///< nodes with out-degree 0.
};

/// Computes all fields in one pass.
GraphStats ComputeStats(const Graph& g);

/// One-line rendering, e.g. "n=4039 m=88234 m/n=21.8 ...".
std::string ToString(const GraphStats& stats);

}  // namespace csrplus::graph

#endif  // CSRPLUS_GRAPH_STATS_H_
