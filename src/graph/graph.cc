#include "graph/graph.h"

#include <algorithm>

namespace csrplus::graph {

GraphBuilder::GraphBuilder(Index num_nodes) : num_nodes_(num_nodes) {
  CSR_CHECK(num_nodes >= 0);
}

void GraphBuilder::AddEdge(Index u, Index v) {
  CSR_DCHECK(u >= 0 && u < num_nodes_) << "source out of range";
  CSR_DCHECK(v >= 0 && v < num_nodes_) << "destination out of range";
  edges_.push_back({u, v});
}

Result<Graph> GraphBuilder::Build() {
  if (symmetrize_) {
    const std::size_t original = edges_.size();
    edges_.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges_.push_back({edges_[i].dst, edges_[i].src});
    }
  }
  if (!keep_self_loops_) {
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [](const Edge& e) { return e.src == e.dst; }),
                 edges_.end());
  }

  // Counting-sort by source, then sort/dedupe within rows — the same path
  // CsrMatrix::FromCoo takes, but specialised to unit weights so we avoid
  // materialising a triple list with double values.
  const std::size_t m_staged = edges_.size();
  std::vector<int64_t> row_ptr(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const Edge& e : edges_) {
    ++row_ptr[static_cast<std::size_t>(e.src) + 1];
  }
  for (std::size_t i = 1; i < row_ptr.size(); ++i) {
    row_ptr[i] += row_ptr[i - 1];
  }
  std::vector<int32_t> cols(m_staged);
  {
    std::vector<int64_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
    for (const Edge& e : edges_) {
      cols[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(e.src)]++)] =
          static_cast<int32_t>(e.dst);
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();

  // Sort + dedupe each row in place.
  std::vector<int64_t> new_row_ptr(static_cast<std::size_t>(num_nodes_) + 1, 0);
  int64_t write = 0;
  for (Index u = 0; u < num_nodes_; ++u) {
    const int64_t begin = row_ptr[static_cast<std::size_t>(u)];
    const int64_t end = row_ptr[static_cast<std::size_t>(u) + 1];
    std::sort(cols.begin() + begin, cols.begin() + end);
    for (int64_t p = begin; p < end; ++p) {
      if (p > begin && cols[static_cast<std::size_t>(p)] ==
                           cols[static_cast<std::size_t>(p - 1)]) {
        continue;
      }
      cols[static_cast<std::size_t>(write++)] =
          cols[static_cast<std::size_t>(p)];
    }
    new_row_ptr[static_cast<std::size_t>(u) + 1] = write;
  }
  cols.resize(static_cast<std::size_t>(write));
  cols.shrink_to_fit();

  Graph g;
  std::vector<double> values(static_cast<std::size_t>(write), 1.0);
  g.adjacency_ = CsrMatrix::FromParts(num_nodes_, num_nodes_,
                                      std::move(new_row_ptr), std::move(cols),
                                      std::move(values));
  g.in_degree_.assign(static_cast<std::size_t>(num_nodes_), 0);
  for (int32_t c : g.adjacency_.col_index()) {
    ++g.in_degree_[static_cast<std::size_t>(c)];
  }
  return g;
}

}  // namespace csrplus::graph
