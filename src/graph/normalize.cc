#include "graph/normalize.h"

#include "obs/trace.h"

namespace csrplus::graph {

CsrMatrix ColumnNormalizedTransition(const Graph& g) {
  CSRPLUS_OBS_SCOPED_US("csrplus.phase.normalize_us",
                        "building the column-normalised transition Q");
  CSRPLUS_TRACE_SPAN_ARG(span, obs::spans::kNormalize, "n", g.num_nodes());
  CsrMatrix q = g.adjacency();  // copy structure + unit values
  std::vector<double> scale(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (Index v = 0; v < g.num_nodes(); ++v) {
    const Index d = g.InDegree(v);
    scale[static_cast<std::size_t>(v)] = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  }
  q.ScaleColumns(scale);
  return q;
}

CsrMatrix RowNormalizedTransition(const Graph& g) {
  CsrMatrix p = g.adjacency();
  std::vector<double> scale(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (Index u = 0; u < g.num_nodes(); ++u) {
    const Index d = g.OutDegree(u);
    scale[static_cast<std::size_t>(u)] = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  }
  p.ScaleRows(scale);
  return p;
}

}  // namespace csrplus::graph
