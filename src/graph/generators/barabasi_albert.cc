#include <vector>

#include "common/rng.h"
#include "graph/generators/generators.h"

namespace csrplus::graph {

Result<Graph> BarabasiAlbert(Index num_nodes, Index edges_per_node,
                             uint64_t seed) {
  if (edges_per_node < 1) {
    return Status::InvalidArgument("BarabasiAlbert: edges_per_node >= 1");
  }
  if (num_nodes <= edges_per_node) {
    return Status::InvalidArgument(
        "BarabasiAlbert: num_nodes must exceed edges_per_node");
  }

  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.ReserveEdges(
      static_cast<std::size_t>(num_nodes * edges_per_node));

  // `targets` holds one entry per edge endpoint so that sampling an index
  // uniformly realises preferential attachment (probability proportional to
  // degree). Seed with a small complete kernel.
  std::vector<Index> targets;
  targets.reserve(static_cast<std::size_t>(2 * num_nodes * edges_per_node));
  const Index kernel = edges_per_node + 1;
  for (Index u = 0; u < kernel; ++u) {
    for (Index v = 0; v < kernel; ++v) {
      if (u == v) continue;
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  for (Index u = kernel; u < num_nodes; ++u) {
    for (Index e = 0; e < edges_per_node; ++e) {
      const Index v = targets[static_cast<std::size_t>(
          rng.Below(static_cast<uint64_t>(targets.size())))];
      if (v == u) {
        --e;  // resample; self-loop would be dropped anyway
        continue;
      }
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return builder.Build();
}

}  // namespace csrplus::graph
