#include "common/rng.h"
#include "graph/generators/generators.h"

namespace csrplus::graph {

Result<Graph> WattsStrogatz(Index num_nodes, Index k, double beta,
                            uint64_t seed) {
  if (k < 1 || k >= num_nodes) {
    return Status::InvalidArgument("WattsStrogatz: need 1 <= k < n");
  }
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("WattsStrogatz: beta must be in [0, 1]");
  }

  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.ReserveEdges(static_cast<std::size_t>(num_nodes * k));
  for (Index u = 0; u < num_nodes; ++u) {
    for (Index j = 1; j <= k; ++j) {
      Index v = (u + j) % num_nodes;
      if (rng.Bernoulli(beta)) {
        v = static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
        while (v == u) {
          v = static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
        }
      }
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace csrplus::graph
