#include <cmath>
#include <vector>

#include "common/rng.h"
#include "graph/generators/generators.h"

namespace csrplus::graph {

Result<Graph> StochasticBlockModel(Index num_nodes, Index num_blocks,
                                   int64_t num_edges, double in_out_ratio,
                                   uint64_t seed) {
  if (num_blocks < 1 || num_blocks > num_nodes) {
    return Status::InvalidArgument("SBM: need 1 <= blocks <= nodes");
  }
  if (in_out_ratio < 1.0) {
    return Status::InvalidArgument("SBM: in_out_ratio must be >= 1");
  }

  // Split the edge budget between within-community and cross-community
  // pairs according to the density ratio, then ball-drop edges uniformly
  // within each category — O(m) regardless of n.
  const double blocks = static_cast<double>(num_blocks);
  const double block_size =
      static_cast<double>(num_nodes) / blocks;
  const double within_pairs = blocks * block_size * (block_size - 1.0);
  const double cross_pairs =
      static_cast<double>(num_nodes) * (static_cast<double>(num_nodes) - 1.0) -
      within_pairs;
  const double within_weight = within_pairs * in_out_ratio;
  const double frac_within =
      within_weight / (within_weight + cross_pairs);
  const int64_t within_edges =
      static_cast<int64_t>(std::llround(frac_within * static_cast<double>(num_edges)));

  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.ReserveEdges(static_cast<std::size_t>(num_edges));

  const Index base = num_nodes / num_blocks;
  const Index remainder = num_nodes % num_blocks;
  const auto block_begin = [&](Index b) {
    return b * base + std::min(b, remainder);
  };
  const auto block_count = [&](Index b) { return base + (b < remainder ? 1 : 0); };

  for (int64_t e = 0; e < within_edges; ++e) {
    const Index b = static_cast<Index>(
        rng.Below(static_cast<uint64_t>(num_blocks)));
    const Index lo = block_begin(b);
    const Index cnt = block_count(b);
    if (cnt < 2) continue;
    const Index u = lo + static_cast<Index>(rng.Below(static_cast<uint64_t>(cnt)));
    Index v = lo + static_cast<Index>(rng.Below(static_cast<uint64_t>(cnt)));
    while (v == u) {
      v = lo + static_cast<Index>(rng.Below(static_cast<uint64_t>(cnt)));
    }
    builder.AddEdge(u, v);
  }
  for (int64_t e = within_edges; e < num_edges; ++e) {
    const Index u =
        static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
    Index v = static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
    while (v == u) {
      v = static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
    }
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace csrplus::graph
