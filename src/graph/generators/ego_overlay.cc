#include <cmath>
#include <vector>

#include "common/rng.h"
#include "graph/generators/generators.h"

namespace csrplus::graph {

Result<Graph> EgoOverlay(Index num_nodes, Index num_egos, Index ego_size,
                         double within_ego_p, int64_t background_edges,
                         uint64_t seed) {
  if (num_egos < 1 || ego_size < 2 || ego_size > num_nodes) {
    return Status::InvalidArgument("EgoOverlay: bad ego parameters");
  }
  if (within_ego_p <= 0.0 || within_ego_p > 1.0) {
    return Status::InvalidArgument("EgoOverlay: within_ego_p must be (0, 1]");
  }

  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.symmetrize(true);

  // Each ego circle: a hub plus ego_size-1 members drawn uniformly (circles
  // overlap by construction), hub connected to all members, members wired
  // pairwise with probability within_ego_p via geometric skipping.
  std::vector<Index> members(static_cast<std::size_t>(ego_size));
  for (Index ego = 0; ego < num_egos; ++ego) {
    for (Index i = 0; i < ego_size; ++i) {
      members[static_cast<std::size_t>(i)] =
          static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
    }
    const Index hub = members[0];
    for (Index i = 1; i < ego_size; ++i) {
      if (members[static_cast<std::size_t>(i)] != hub) {
        builder.AddEdge(hub, members[static_cast<std::size_t>(i)]);
      }
    }
    // Bernoulli(p) over member pairs without touching every pair: jump
    // ahead by geometric gaps.
    const int64_t num_pairs =
        static_cast<int64_t>(ego_size - 1) * (ego_size - 2) / 2;
    if (within_ego_p >= 1.0) {
      for (Index i = 1; i < ego_size; ++i) {
        for (Index j = i + 1; j < ego_size; ++j) {
          builder.AddEdge(members[static_cast<std::size_t>(i)],
                          members[static_cast<std::size_t>(j)]);
        }
      }
    } else {
      const double log_q = std::log(1.0 - within_ego_p);
      int64_t pair = -1;
      while (true) {
        const double u = std::max(rng.Uniform(), 1e-300);
        pair += 1 + static_cast<int64_t>(std::log(u) / log_q);
        if (pair >= num_pairs) break;
        // Decode linear pair index -> (i, j) over members[1..ego_size).
        int64_t rem = pair;
        Index i = 1;
        for (Index row_len = ego_size - 2; row_len >= 1; --row_len, ++i) {
          if (rem < row_len) break;
          rem -= row_len;
        }
        const Index j = i + 1 + static_cast<Index>(rem);
        const Index a = members[static_cast<std::size_t>(i)];
        const Index b = members[static_cast<std::size_t>(j)];
        if (a != b) builder.AddEdge(a, b);
      }
    }
  }

  for (int64_t e = 0; e < background_edges; ++e) {
    const Index u =
        static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
    Index v = static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
    while (v == u) {
      v = static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
    }
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace csrplus::graph
