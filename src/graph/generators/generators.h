// Synthetic graph generators.
//
// These produce deterministic (seeded) analogues of the SNAP datasets the
// paper evaluates on. Each generator's degree structure is the property that
// matters for CoSimRank workloads: R-MAT yields the heavy-tailed in-degree
// skew of web/social crawls (TW, WB, YT, WT analogues), ego-overlay yields
// the dense-clique-around-hubs structure of ego-Facebook, and Erdős–Rényi
// yields the near-uniform sparse structure of Gnutella P2P.

#ifndef CSRPLUS_GRAPH_GENERATORS_GENERATORS_H_
#define CSRPLUS_GRAPH_GENERATORS_GENERATORS_H_

#include <cstdint>

#include "common/status.h"
#include "graph/graph.h"

namespace csrplus::graph {

/// G(n, m) Erdős–Rényi: m directed edges sampled uniformly (no self-loops,
/// deduplicated, so the realised edge count can be slightly below m).
Result<Graph> ErdosRenyi(Index num_nodes, int64_t num_edges, uint64_t seed,
                         bool symmetrize = false);

/// Barabási–Albert preferential attachment: each new node attaches
/// `edges_per_node` directed edges to existing nodes with probability
/// proportional to their current degree. Produces a power-law in-degree tail.
Result<Graph> BarabasiAlbert(Index num_nodes, Index edges_per_node,
                             uint64_t seed);

/// Parameters of the recursive matrix (R-MAT) model.
struct RmatParams {
  double a = 0.57;  ///< Probability mass of the top-left quadrant.
  double b = 0.19;  ///< Top-right.
  double c = 0.19;  ///< Bottom-left.
  /// d = 1 - a - b - c (bottom-right).
  /// Per-level probability noise to avoid degree-staircase artefacts.
  double noise = 0.1;
};

/// R-MAT (Chakrabarti et al.) over 2^scale nodes with `num_edges` edges.
/// The standard model for skewed web/social graphs (our TW/WB analogues).
Result<Graph> Rmat(int scale, int64_t num_edges, uint64_t seed,
                   const RmatParams& params = {});

/// Watts–Strogatz small world: ring lattice of degree k, each edge rewired
/// with probability beta. Directed edges along the rewired lattice.
Result<Graph> WattsStrogatz(Index num_nodes, Index k, double beta,
                            uint64_t seed);

/// Stochastic block model with `num_blocks` equal communities. Edge counts
/// are sampled per block pair (ball-dropping), so generation is O(m) rather
/// than O(n^2). `in_out_ratio` is the expected ratio of within-community to
/// cross-community edge density.
Result<Graph> StochasticBlockModel(Index num_nodes, Index num_blocks,
                                   int64_t num_edges, double in_out_ratio,
                                   uint64_t seed);

/// Ego-overlay model of a social friendship graph: hub nodes with dense
/// partially-overlapping friend circles plus uniform background edges;
/// symmetrized. Approximates the ego-Facebook structure (m/n ~ 22 with
/// strong local clustering).
Result<Graph> EgoOverlay(Index num_nodes, Index num_egos, Index ego_size,
                         double within_ego_p, int64_t background_edges,
                         uint64_t seed);

}  // namespace csrplus::graph

#endif  // CSRPLUS_GRAPH_GENERATORS_GENERATORS_H_
