#include "common/rng.h"
#include "graph/generators/generators.h"

namespace csrplus::graph {

Result<Graph> ErdosRenyi(Index num_nodes, int64_t num_edges, uint64_t seed,
                         bool symmetrize) {
  if (num_nodes < 2) {
    return Status::InvalidArgument("ErdosRenyi needs at least 2 nodes");
  }
  const int64_t max_edges =
      static_cast<int64_t>(num_nodes) * (num_nodes - 1);
  if (num_edges < 0 || num_edges > max_edges) {
    return Status::InvalidArgument("ErdosRenyi: edge count out of range");
  }

  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.symmetrize(symmetrize);
  builder.ReserveEdges(static_cast<std::size_t>(num_edges));
  for (int64_t e = 0; e < num_edges; ++e) {
    Index u = static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
    Index v = static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
    while (v == u) {
      v = static_cast<Index>(rng.Below(static_cast<uint64_t>(num_nodes)));
    }
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace csrplus::graph
