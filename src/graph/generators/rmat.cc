#include <cmath>

#include "common/rng.h"
#include "graph/generators/generators.h"

namespace csrplus::graph {

Result<Graph> Rmat(int scale, int64_t num_edges, uint64_t seed,
                   const RmatParams& params) {
  if (scale < 1 || scale > 30) {
    return Status::InvalidArgument("Rmat: scale must be in [1, 30]");
  }
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || d < 0) {
    return Status::InvalidArgument("Rmat: quadrant probabilities invalid");
  }

  const Index n = Index{1} << scale;
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.ReserveEdges(static_cast<std::size_t>(num_edges));

  for (int64_t e = 0; e < num_edges; ++e) {
    Index row = 0, col = 0;
    for (int level = 0; level < scale; ++level) {
      // Jitter the quadrant masses per level so degrees do not form the
      // characteristic R-MAT staircase.
      const double jitter =
          1.0 + params.noise * (rng.Uniform() - 0.5) * 2.0;
      double a = params.a * jitter;
      const double rest = (1.0 - a) / (params.b + params.c + d);
      const double b = params.b * rest;
      const double c = params.c * rest;

      const double p = rng.Uniform();
      row <<= 1;
      col <<= 1;
      if (p < a) {
        // top-left
      } else if (p < a + b) {
        col |= 1;
      } else if (p < a + b + c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row != col) builder.AddEdge(row, col);
  }
  return builder.Build();
}

}  // namespace csrplus::graph
