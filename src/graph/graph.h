// Directed graph type backed by CSR adjacency.
//
// A Graph is immutable once built (use GraphBuilder). The adjacency matrix A
// has A[u][v] = 1 iff the edge u -> v exists; rows are out-neighbour lists.
// This matches the paper's storage description (§4.1): COO triples grouped
// by source into neighbour lists — i.e. exactly CSR.

#ifndef CSRPLUS_GRAPH_GRAPH_H_
#define CSRPLUS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "linalg/sparse_matrix.h"

namespace csrplus::graph {

using linalg::CsrMatrix;
using linalg::Index;

/// A directed edge (source -> destination).
struct Edge {
  Index src;
  Index dst;
};

/// Immutable directed graph.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes n.
  Index num_nodes() const { return adjacency_.rows(); }

  /// Number of (deduplicated) directed edges m.
  int64_t num_edges() const { return adjacency_.nnz(); }

  /// The 0/1 adjacency matrix in CSR (row u = out-neighbours of u).
  const CsrMatrix& adjacency() const { return adjacency_; }

  /// Out-degree of node u.
  Index OutDegree(Index u) const { return adjacency_.RowNnz(u); }

  /// In-degree of node u (precomputed at build time).
  Index InDegree(Index u) const {
    return in_degree_[static_cast<std::size_t>(u)];
  }

  /// All in-degrees (length n).
  const std::vector<Index>& in_degrees() const { return in_degree_; }

  /// Out-neighbours of u, ascending.
  std::span<const int32_t> OutNeighbors(Index u) const {
    const auto& rp = adjacency_.row_ptr();
    const auto begin = rp[static_cast<std::size_t>(u)];
    const auto end = rp[static_cast<std::size_t>(u) + 1];
    return {adjacency_.col_index().data() + begin,
            static_cast<std::size_t>(end - begin)};
  }

  /// True if edge u -> v exists.
  bool HasEdge(Index u, Index v) const { return adjacency_.At(u, v) != 0.0; }

  /// Heap bytes held by the graph.
  int64_t AllocatedBytes() const {
    return adjacency_.AllocatedBytes() +
           static_cast<int64_t>(in_degree_.capacity() * sizeof(Index));
  }

 private:
  friend class GraphBuilder;
  CsrMatrix adjacency_;
  std::vector<Index> in_degree_;
};

/// Accumulates edges and produces an immutable Graph.
///
/// Duplicate edges collapse to one; self-loops are dropped unless
/// `keep_self_loops(true)`. With `symmetrize(true)` every edge is added in
/// both directions (used for undirected social graphs like ego-Facebook).
class GraphBuilder {
 public:
  /// A builder for a graph over nodes {0, ..., num_nodes-1}.
  explicit GraphBuilder(Index num_nodes);

  GraphBuilder& keep_self_loops(bool keep) {
    keep_self_loops_ = keep;
    return *this;
  }
  GraphBuilder& symmetrize(bool sym) {
    symmetrize_ = sym;
    return *this;
  }

  /// Pre-sizes the edge buffer.
  void ReserveEdges(std::size_t count) { edges_.reserve(count); }

  /// Adds edge u -> v. Node ids must be in range.
  void AddEdge(Index u, Index v);

  /// Number of edges staged so far (before dedup).
  std::size_t staged_edges() const { return edges_.size(); }

  /// Builds the graph; the builder is left empty.
  Result<Graph> Build();

 private:
  Index num_nodes_;
  bool keep_self_loops_ = false;
  bool symmetrize_ = false;
  std::vector<Edge> edges_;
};

}  // namespace csrplus::graph

#endif  // CSRPLUS_GRAPH_GRAPH_H_
