#include "graph/stats.h"

#include <algorithm>

#include "common/strings.h"

namespace csrplus::graph {

GraphStats ComputeStats(const Graph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.avg_degree = s.num_nodes > 0 ? static_cast<double>(s.num_edges) /
                                       static_cast<double>(s.num_nodes)
                                 : 0.0;
  for (Index u = 0; u < g.num_nodes(); ++u) {
    const Index out = g.OutDegree(u);
    const Index in = g.InDegree(u);
    s.max_out_degree = std::max(s.max_out_degree, out);
    s.max_in_degree = std::max(s.max_in_degree, in);
    if (in == 0) ++s.num_dangling_in;
    if (out == 0) ++s.num_dangling_out;
  }
  return s;
}

std::string ToString(const GraphStats& s) {
  return StrPrintf(
      "n=%ld m=%ld m/n=%.1f max_out=%ld max_in=%ld dangling_in=%ld "
      "dangling_out=%ld",
      static_cast<long>(s.num_nodes), static_cast<long>(s.num_edges),
      s.avg_degree, static_cast<long>(s.max_out_degree),
      static_cast<long>(s.max_in_degree), static_cast<long>(s.num_dangling_in),
      static_cast<long>(s.num_dangling_out));
}

}  // namespace csrplus::graph
