// Graph serialization: SNAP-style edge-list text and a fast binary format.
//
// The SNAP reader accepts the format of the datasets the paper evaluates on
// (lines of "src<ws>dst", '#'-prefixed comments, arbitrary node ids that are
// remapped to a dense [0, n) range). The binary format is used by the
// benchmark harness to cache generated graphs between runs.

#ifndef CSRPLUS_GRAPH_IO_H_
#define CSRPLUS_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace csrplus::graph {

/// Options for the edge-list reader.
struct EdgeListOptions {
  /// Add the reverse of every edge (undirected datasets like ego-Facebook).
  bool symmetrize = false;
  /// Keep u -> u edges.
  bool keep_self_loops = false;
};

/// Loads a SNAP-style whitespace-separated edge list. Node ids may be any
/// non-negative 64-bit integers; they are compacted to [0, n) in first-seen
/// order. When `original_ids` is non-null it receives the inverse mapping:
/// (*original_ids)[compact_id] == id as written in the file.
Result<Graph> LoadSnapEdgeList(const std::string& path,
                               const EdgeListOptions& options = {},
                               std::vector<int64_t>* original_ids = nullptr);

/// Writes "src\tdst" lines (no comments).
Status SaveSnapEdgeList(const Graph& g, const std::string& path);

/// Saves the CSR arrays in a little-endian binary container.
Status SaveBinary(const Graph& g, const std::string& path);

/// Loads a graph written by SaveBinary. Fails on bad magic or truncation.
Result<Graph> LoadBinary(const std::string& path);

}  // namespace csrplus::graph

#endif  // CSRPLUS_GRAPH_IO_H_
