// Transition-matrix construction for CoSimRank.
//
// CoSimRank's Q is the *column-normalised* adjacency matrix: column y holds
// 1/indeg(y) at each in-neighbour x of y (Q_{x,y} = A_{x,y} / indeg(y)).
// The PPR iteration p^{(k+1)} = Q p^{(k)} then spreads a query's mass over
// its in-neighbourhood, which is the propagation Figure 1(b) of the paper
// illustrates. Nodes with zero in-degree yield an all-zero column (their
// random surfer has nowhere to come from); this matches the reference
// formulation and keeps Q sub-stochastic.

#ifndef CSRPLUS_GRAPH_NORMALIZE_H_
#define CSRPLUS_GRAPH_NORMALIZE_H_

#include "graph/graph.h"

namespace csrplus::graph {

/// Builds Q = A * D_in^{-1}, the column-normalised adjacency (CSR).
CsrMatrix ColumnNormalizedTransition(const Graph& g);

/// Builds the row-normalised adjacency D_out^{-1} * A (random-walk matrix);
/// provided for PageRank-style consumers of the graph substrate.
CsrMatrix RowNormalizedTransition(const Graph& g);

}  // namespace csrplus::graph

#endif  // CSRPLUS_GRAPH_NORMALIZE_H_
