#include "graph/io.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "obs/trace.h"

namespace csrplus::graph {
namespace {

constexpr uint64_t kBinaryMagic = 0x43535230'47524148ULL;  // "CSR0GRAH"
constexpr uint32_t kBinaryVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* f, const void* data, std::size_t bytes,
                const std::string& path) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status ReadAll(std::FILE* f, void* data, std::size_t bytes,
               const std::string& path) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    return Status::IOError("short read from " + path);
  }
  return Status::OK();
}

}  // namespace

Result<Graph> LoadSnapEdgeList(const std::string& path,
                               const EdgeListOptions& options,
                               std::vector<int64_t>* original_ids) {
  CSRPLUS_OBS_SCOPED_US("csrplus.phase.graph_load_us",
                        "loading a graph from disk (text or binary)");
  CSRPLUS_OBS_COUNTER_ADD("csrplus.graph.loads", "calls",
                          "graph files loaded (text or binary)", 1);
  CSRPLUS_TRACE_SPAN(span, obs::spans::kGraphLoad);
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IOError("cannot open " + path);

  std::unordered_map<int64_t, Index> remap;
  std::vector<Edge> edges;
  char line[512];
  int64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    std::string_view text = StripWhitespace(line);
    if (text.empty() || text[0] == '#' || text[0] == '%') continue;
    int64_t raw_u = 0, raw_v = 0;
    if (std::sscanf(text.data(), "%ld %ld", &raw_u, &raw_v) != 2) {
      return Status::IOError("malformed edge at " + path + ":" +
                             std::to_string(line_no));
    }
    if (raw_u < 0 || raw_v < 0) {
      return Status::IOError("negative node id at " + path + ":" +
                             std::to_string(line_no));
    }
    const auto intern = [&remap](int64_t raw) {
      auto [it, inserted] =
          remap.try_emplace(raw, static_cast<Index>(remap.size()));
      return it->second;
    };
    edges.push_back({intern(raw_u), intern(raw_v)});
  }

  if (original_ids != nullptr) {
    original_ids->assign(remap.size(), 0);
    for (const auto& [raw, compact] : remap) {
      (*original_ids)[static_cast<std::size_t>(compact)] = raw;
    }
  }

  GraphBuilder builder(static_cast<Index>(remap.size()));
  builder.keep_self_loops(options.keep_self_loops)
      .symmetrize(options.symmetrize);
  builder.ReserveEdges(edges.size());
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst);
  return builder.Build();
}

Status SaveSnapEdgeList(const Graph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  for (Index u = 0; u < g.num_nodes(); ++u) {
    for (int32_t v : g.OutNeighbors(u)) {
      if (std::fprintf(f.get(), "%ld\t%d\n", static_cast<long>(u), v) < 0) {
        return Status::IOError("write failure on " + path);
      }
    }
  }
  return Status::OK();
}

Status SaveBinary(const Graph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");

  const CsrMatrix& a = g.adjacency();
  const uint64_t n = static_cast<uint64_t>(g.num_nodes());
  const uint64_t m = static_cast<uint64_t>(g.num_edges());
  CSR_RETURN_IF_ERROR(WriteAll(f.get(), &kBinaryMagic, sizeof(kBinaryMagic), path));
  CSR_RETURN_IF_ERROR(
      WriteAll(f.get(), &kBinaryVersion, sizeof(kBinaryVersion), path));
  CSR_RETURN_IF_ERROR(WriteAll(f.get(), &n, sizeof(n), path));
  CSR_RETURN_IF_ERROR(WriteAll(f.get(), &m, sizeof(m), path));
  CSR_RETURN_IF_ERROR(WriteAll(f.get(), a.row_ptr().data(),
                               a.row_ptr().size() * sizeof(int64_t), path));
  CSR_RETURN_IF_ERROR(WriteAll(f.get(), a.col_index().data(),
                               a.col_index().size() * sizeof(int32_t), path));
  return Status::OK();
}

Result<Graph> LoadBinary(const std::string& path) {
  CSRPLUS_OBS_SCOPED_US("csrplus.phase.graph_load_us",
                        "loading a graph from disk (text or binary)");
  CSRPLUS_OBS_COUNTER_ADD("csrplus.graph.loads", "calls",
                          "graph files loaded (text or binary)", 1);
  CSRPLUS_TRACE_SPAN(span, obs::spans::kGraphLoad);
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);

  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t n = 0, m = 0;
  CSR_RETURN_IF_ERROR(ReadAll(f.get(), &magic, sizeof(magic), path));
  if (magic != kBinaryMagic) {
    return Status::IOError(path + " is not a csrplus binary graph");
  }
  CSR_RETURN_IF_ERROR(ReadAll(f.get(), &version, sizeof(version), path));
  if (version != kBinaryVersion) {
    return Status::IOError(path + ": unsupported version " +
                           std::to_string(version));
  }
  CSR_RETURN_IF_ERROR(ReadAll(f.get(), &n, sizeof(n), path));
  CSR_RETURN_IF_ERROR(ReadAll(f.get(), &m, sizeof(m), path));

  // Validate the declared sizes against the actual file length BEFORE
  // allocating: a corrupt or foreign header must produce a clean error, not
  // an attempted multi-terabyte allocation.
  const long header_end = std::ftell(f.get());
  if (header_end < 0 || std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::IOError("cannot size " + path);
  }
  const int64_t file_bytes = std::ftell(f.get());
  if (std::fseek(f.get(), header_end, SEEK_SET) != 0) {
    return Status::IOError("cannot size " + path);
  }
  const uint64_t payload_bytes =
      static_cast<uint64_t>(file_bytes) - static_cast<uint64_t>(header_end);
  if (n > (1ULL << 40) || m > (1ULL << 48) ||
      (n + 1) * sizeof(int64_t) + m * sizeof(int32_t) != payload_bytes) {
    return Status::IOError(path + ": header sizes (n=" + std::to_string(n) +
                           ", m=" + std::to_string(m) +
                           ") do not match the file length");
  }

  std::vector<int64_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<int32_t> cols(static_cast<std::size_t>(m));
  CSR_RETURN_IF_ERROR(ReadAll(f.get(), row_ptr.data(),
                              row_ptr.size() * sizeof(int64_t), path));
  CSR_RETURN_IF_ERROR(
      ReadAll(f.get(), cols.data(), cols.size() * sizeof(int32_t), path));
  if (row_ptr.front() != 0 || row_ptr.back() != static_cast<int64_t>(m)) {
    return Status::IOError(path + ": inconsistent edge count");
  }
  for (std::size_t i = 1; i < row_ptr.size(); ++i) {
    if (row_ptr[i] < row_ptr[i - 1]) {
      return Status::IOError(path + ": corrupt row pointers");
    }
  }

  // Rebuild through the builder to restore in-degrees and validation.
  GraphBuilder builder(static_cast<Index>(n));
  builder.keep_self_loops(true);  // binary files are already canonical
  builder.ReserveEdges(static_cast<std::size_t>(m));
  for (Index u = 0; u < static_cast<Index>(n); ++u) {
    for (int64_t p = row_ptr[static_cast<std::size_t>(u)];
         p < row_ptr[static_cast<std::size_t>(u) + 1]; ++p) {
      builder.AddEdge(u, cols[static_cast<std::size_t>(p)]);
    }
  }
  return builder.Build();
}

}  // namespace csrplus::graph
