#include "eval/table.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace csrplus::eval {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CSR_CHECK_EQ(cells.size(), columns_.size()) << "row width mismatch";
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                   c + 1 < row.size() ? "  " : "");
    }
    std::fprintf(out, "\n");
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  std::string rule(total > 2 ? total - 2 : total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  std::fprintf(out, "%s\n",
               Join(columns_, ",").c_str());
  for (const auto& row : rows_) {
    std::fprintf(out, "%s\n", Join(row, ",").c_str());
  }
}

std::string FormatSci(double value) { return StrPrintf("%.4e", value); }

std::string FormatTime(double seconds) {
  if (seconds < 1e-3) return StrPrintf("%.1fus", seconds * 1e6);
  if (seconds < 1.0) return StrPrintf("%.2fms", seconds * 1e3);
  return StrPrintf("%.2fs", seconds);
}

}  // namespace csrplus::eval
