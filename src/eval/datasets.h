// Dataset registry: deterministic synthetic analogues of the paper's SNAP
// datasets, generated on first use and cached in binary form.
//
// | key | paper dataset (n / m)            | generator         | note        |
// |-----|----------------------------------|-------------------|-------------|
// | fb  | ego-Facebook (4,039 / 88,234)    | ego-overlay       | full size   |
// | p2p | Gnutella P2P (22,687 / 54,705)   | Erdős–Rényi       | full size   |
// | yt  | YouTube (1.13M / 5.98M)          | Barabási–Albert   | scaled @ci  |
// | wt  | Wiki-Talk (2.39M / 5.02M)        | R-MAT             | scaled @ci  |
// | tw  | Twitter (41.6M / 1.47B)          | R-MAT             | scaled both |
// | wb  | WebBase (118M / 1.02B)           | R-MAT             | scaled both |
//
// TW and WB cannot fit a 15 GB single-core box at the paper's sizes even for
// CSR+ alone; they are scaled so that the paper's qualitative outcome — only
// CSR+ survives; every rival exceeds the memory budget — reproduces exactly.
// COSIM_SCALE=full selects the larger configurations (see datasets.cc).

#ifndef CSRPLUS_EVAL_DATASETS_H_
#define CSRPLUS_EVAL_DATASETS_H_

#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "graph/graph.h"

namespace csrplus::eval {

using graph::Graph;
using linalg::Index;

/// Static description of one registry entry.
struct DatasetSpec {
  std::string key;          ///< short name used on bench command lines.
  std::string paper_name;   ///< the SNAP dataset it stands in for.
  Index paper_nodes;        ///< n reported in the paper.
  int64_t paper_edges;      ///< m reported in the paper.
  Index nodes_ci;           ///< synthetic n at COSIM_SCALE=ci.
  int64_t edges_ci;         ///< synthetic m at ci.
  Index nodes_full;         ///< synthetic n at COSIM_SCALE=full.
  int64_t edges_full;       ///< synthetic m at full.
};

/// All registry entries in the paper's order (fb, p2p, yt, wt, tw, wb).
const std::vector<DatasetSpec>& AllDatasets();

/// Spec lookup by key. NotFound for unknown keys.
Result<DatasetSpec> FindDataset(const std::string& key);

/// Generates (or loads from `cache_dir`) the graph for `key` at `scale`.
/// Pass an empty cache_dir to disable caching.
Result<Graph> LoadOrGenerate(const std::string& key, BenchScale scale,
                             const std::string& cache_dir = "data");

/// Uniformly samples `count` distinct query nodes (seeded, deterministic).
std::vector<Index> SampleQueries(const Graph& g, Index count, uint64_t seed);

}  // namespace csrplus::eval

#endif  // CSRPLUS_EVAL_DATASETS_H_
