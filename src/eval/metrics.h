// Accuracy metrics for similarity-score blocks.
//
// AvgDiff is the paper's Table 3 measure:
//   AvgDiff_Q(S_hat, S) = (1 / (|V| |Q|)) * sum_{(i,j)} |S_hat[i,j] - S[i,j]|
// computed over the n x |Q| multi-source blocks.

#ifndef CSRPLUS_EVAL_METRICS_H_
#define CSRPLUS_EVAL_METRICS_H_

#include <vector>

#include "linalg/dense_matrix.h"

namespace csrplus::eval {

using linalg::DenseMatrix;
using linalg::Index;

/// Mean absolute difference over all entries (the paper's AvgDiff).
double AvgDiff(const DenseMatrix& approx, const DenseMatrix& exact);

/// Maximum absolute difference over all entries.
double MaxDiff(const DenseMatrix& approx, const DenseMatrix& exact);

/// Fraction of overlap between the top-k sets of two score columns
/// (|A ∩ B| / k); used by the ranking-quality ablation.
double TopKOverlap(const DenseMatrix& approx, const DenseMatrix& exact,
                   Index column, Index k);

}  // namespace csrplus::eval

#endif  // CSRPLUS_EVAL_METRICS_H_
