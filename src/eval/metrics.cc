#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/topk.h"

namespace csrplus::eval {

double AvgDiff(const DenseMatrix& approx, const DenseMatrix& exact) {
  CSR_CHECK_EQ(approx.rows(), exact.rows());
  CSR_CHECK_EQ(approx.cols(), exact.cols());
  const Index total = approx.size();
  if (total == 0) return 0.0;
  double sum = 0.0;
  const double* pa = approx.data();
  const double* pe = exact.data();
  for (Index i = 0; i < total; ++i) sum += std::fabs(pa[i] - pe[i]);
  return sum / static_cast<double>(total);
}

double MaxDiff(const DenseMatrix& approx, const DenseMatrix& exact) {
  CSR_CHECK_EQ(approx.rows(), exact.rows());
  CSR_CHECK_EQ(approx.cols(), exact.cols());
  double maxd = 0.0;
  const double* pa = approx.data();
  const double* pe = exact.data();
  for (Index i = 0; i < approx.size(); ++i) {
    maxd = std::max(maxd, std::fabs(pa[i] - pe[i]));
  }
  return maxd;
}

double TopKOverlap(const DenseMatrix& approx, const DenseMatrix& exact,
                   Index column, Index k) {
  const auto top_a = core::TopKOfColumn(approx, column, k);
  const auto top_e = core::TopKOfColumn(exact, column, k);
  std::unordered_set<Index> exact_set;
  for (const auto& sn : top_e) exact_set.insert(sn.node);
  Index hits = 0;
  for (const auto& sn : top_a) hits += exact_set.count(sn.node) > 0 ? 1 : 0;
  return k > 0 ? static_cast<double>(hits) / static_cast<double>(k) : 0.0;
}

}  // namespace csrplus::eval
