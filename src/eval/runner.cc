#include "eval/runner.h"

#include "baselines/cosimmate.h"
#include "baselines/iterative_allpairs.h"
#include "baselines/rls.h"
#include "baselines/rp_cosim.h"
#include "common/memory.h"
#include "common/timer.h"
#include "core/csrplus_engine.h"
#include "core/dynamic_engine.h"

namespace csrplus::eval {
namespace {

// Runs `fn` and fills `metrics` with its wall time and the allocation peak
// above the level at entry.
template <typename Fn>
auto Measure(PhaseMetrics* metrics, Fn&& fn) {
  const int64_t base = GetTrackedMemory().current_bytes;
  ResetPeakTrackedBytes();
  WallTimer timer;
  auto result = fn();
  metrics->seconds = timer.ElapsedSeconds();
  metrics->peak_bytes =
      std::max<int64_t>(0, GetTrackedMemory().peak_bytes - base);
  return result;
}

using EnginePtr = std::unique_ptr<core::QueryEngine>;

// Moves a by-value engine into the type-erased pointer the runner hands out.
template <typename Engine>
Result<EnginePtr> Erase(Result<Engine> engine) {
  if (!engine.ok()) return engine.status();
  return EnginePtr(std::make_unique<Engine>(std::move(*engine)));
}

}  // namespace

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kCsrPlus:
      return "CSR+";
    case Method::kCsrNi:
      return "CSR-NI";
    case Method::kCsrIt:
      return "CSR-IT";
    case Method::kCsrRls:
      return "CSR-RLS";
    case Method::kCoSimMate:
      return "CoSimMate";
    case Method::kRpCoSim:
      return "RP-CoSim";
    case Method::kDynamic:
      return "CSR+dyn";
  }
  return "?";
}

const std::vector<Method>& PaperMethods() {
  static const std::vector<Method> kMethods = {
      Method::kCsrPlus, Method::kCsrRls, Method::kCsrIt, Method::kCsrNi};
  return kMethods;
}

Result<EnginePtr> CreateEngine(Method method, const CsrMatrix& transition,
                               const RunConfig& config) {
  switch (method) {
    case Method::kCsrPlus: {
      core::CsrPlusOptions options;
      options.rank = config.rank;
      options.damping = config.damping;
      options.epsilon = config.epsilon;
      options.precision = config.precision;
      return Erase(
          core::CsrPlusEngine::PrecomputeFromTransition(transition, options));
    }
    case Method::kCsrNi: {
      baselines::NiSimOptions options;
      options.rank = config.rank;
      options.damping = config.damping;
      options.fidelity = config.ni_fidelity;
      return Erase(baselines::NiSimEngine::Precompute(transition, options));
    }
    case Method::kCsrIt: {
      baselines::IterativeOptions options;
      options.damping = config.damping;
      options.iterations = static_cast<int>(config.rank);  // §4.1: k = r
      return Erase(
          baselines::IterativeAllPairsEngine::Precompute(transition, options));
    }
    case Method::kCsrRls: {
      baselines::RlsOptions options;
      options.damping = config.damping;
      options.iterations = static_cast<int>(config.rank);  // §4.1: k = r
      return EnginePtr(
          std::make_unique<baselines::RlsEngine>(&transition, options));
    }
    case Method::kCoSimMate: {
      baselines::CoSimMateOptions options;
      options.damping = config.damping;
      // 2^steps series terms >= the rank-matched iteration count.
      int steps = 1;
      while ((1 << steps) < config.rank) ++steps;
      options.squaring_steps = steps;
      return Erase(baselines::CoSimMateEngine::Precompute(transition, options));
    }
    case Method::kRpCoSim: {
      baselines::RpCoSimOptions options;
      options.damping = config.damping;
      options.iterations = static_cast<int>(config.rank);
      options.num_samples = config.rp_samples;
      return EnginePtr(
          std::make_unique<baselines::RpCosimEngine>(&transition, options));
    }
    case Method::kDynamic: {
      core::DynamicOptions options;
      options.base.rank = config.rank;
      options.base.damping = config.damping;
      options.base.epsilon = config.epsilon;
      return Erase(
          core::DynamicCsrPlusEngine::BuildFromTransition(transition, options));
    }
  }
  return Status::Internal("unknown method");
}

RunOutcome RunMethod(Method method, const CsrMatrix& transition,
                     const std::vector<Index>& queries,
                     const RunConfig& config) {
  RunOutcome outcome;
  auto engine = Measure(&outcome.precompute, [&] {
    return CreateEngine(method, transition, config);
  });
  if (!engine.ok()) {
    outcome.status = engine.status();
    return outcome;
  }
  auto scores = Measure(&outcome.query,
                        [&] { return (*engine)->MultiSourceQuery(queries); });
  if (!scores.ok()) {
    outcome.status = scores.status();
    return outcome;
  }
  if (config.keep_scores) outcome.scores = std::move(*scores);
  outcome.status = Status::OK();
  return outcome;
}

std::string OutcomeLabel(const RunOutcome& outcome) {
  if (outcome.status.ok()) return "OK";
  if (outcome.status.IsResourceExhausted()) return "FAIL(mem)";
  return "FAIL(" + std::string(StatusCodeToString(outcome.status.code())) + ")";
}

}  // namespace csrplus::eval
