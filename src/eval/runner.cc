#include "eval/runner.h"

#include "baselines/cosimmate.h"
#include "baselines/iterative_allpairs.h"
#include "baselines/rls.h"
#include "baselines/rp_cosim.h"
#include "common/memory.h"
#include "common/timer.h"
#include "core/csrplus_engine.h"

namespace csrplus::eval {
namespace {

// Runs `fn` and fills `metrics` with its wall time and the allocation peak
// above the level at entry.
template <typename Fn>
auto Measure(PhaseMetrics* metrics, Fn&& fn) {
  const int64_t base = GetTrackedMemory().current_bytes;
  ResetPeakTrackedBytes();
  WallTimer timer;
  auto result = fn();
  metrics->seconds = timer.ElapsedSeconds();
  metrics->peak_bytes =
      std::max<int64_t>(0, GetTrackedMemory().peak_bytes - base);
  return result;
}

RunOutcome RunCsrPlus(const CsrMatrix& transition,
                      const std::vector<Index>& queries,
                      const RunConfig& config) {
  RunOutcome outcome;
  core::CsrPlusOptions options;
  options.rank = config.rank;
  options.damping = config.damping;
  options.epsilon = config.epsilon;

  auto engine = Measure(&outcome.precompute, [&] {
    return core::CsrPlusEngine::PrecomputeFromTransition(transition, options);
  });
  if (!engine.ok()) {
    outcome.status = engine.status();
    return outcome;
  }
  auto scores = Measure(&outcome.query,
                        [&] { return engine->MultiSourceQuery(queries); });
  if (!scores.ok()) {
    outcome.status = scores.status();
    return outcome;
  }
  if (config.keep_scores) outcome.scores = std::move(*scores);
  outcome.status = Status::OK();
  return outcome;
}

RunOutcome RunCsrNi(const CsrMatrix& transition,
                    const std::vector<Index>& queries,
                    const RunConfig& config) {
  RunOutcome outcome;
  baselines::NiSimOptions options;
  options.rank = config.rank;
  options.damping = config.damping;
  options.fidelity = config.ni_fidelity;

  auto engine = Measure(&outcome.precompute, [&] {
    return baselines::NiSimEngine::Precompute(transition, options);
  });
  if (!engine.ok()) {
    outcome.status = engine.status();
    return outcome;
  }
  auto scores = Measure(&outcome.query,
                        [&] { return engine->MultiSourceQuery(queries); });
  if (!scores.ok()) {
    outcome.status = scores.status();
    return outcome;
  }
  if (config.keep_scores) outcome.scores = std::move(*scores);
  outcome.status = Status::OK();
  return outcome;
}

RunOutcome RunCsrIt(const CsrMatrix& transition,
                    const std::vector<Index>& queries,
                    const RunConfig& config) {
  RunOutcome outcome;
  baselines::IterativeOptions options;
  options.damping = config.damping;
  options.iterations = static_cast<int>(config.rank);  // paper §4.1: k = r

  auto engine = Measure(&outcome.precompute, [&] {
    return baselines::IterativeAllPairsEngine::Precompute(transition, options);
  });
  if (!engine.ok()) {
    outcome.status = engine.status();
    return outcome;
  }
  auto scores = Measure(&outcome.query,
                        [&] { return engine->MultiSourceQuery(queries); });
  if (!scores.ok()) {
    outcome.status = scores.status();
    return outcome;
  }
  if (config.keep_scores) outcome.scores = std::move(*scores);
  outcome.status = Status::OK();
  return outcome;
}

RunOutcome RunCsrRls(const CsrMatrix& transition,
                     const std::vector<Index>& queries,
                     const RunConfig& config) {
  RunOutcome outcome;
  baselines::RlsOptions options;
  options.damping = config.damping;
  options.iterations = static_cast<int>(config.rank);  // paper §4.1: k = r

  // CSR-RLS has no reusable precomputation; everything is query work.
  auto scores = Measure(&outcome.query, [&] {
    return baselines::RlsMultiSource(transition, queries, options);
  });
  if (!scores.ok()) {
    outcome.status = scores.status();
    return outcome;
  }
  if (config.keep_scores) outcome.scores = std::move(*scores);
  outcome.status = Status::OK();
  return outcome;
}

RunOutcome RunCoSimMate(const CsrMatrix& transition,
                        const std::vector<Index>& queries,
                        const RunConfig& config) {
  RunOutcome outcome;
  baselines::CoSimMateOptions options;
  options.damping = config.damping;
  // 2^steps series terms >= the rank-matched iteration count.
  int steps = 1;
  while ((1 << steps) < config.rank) ++steps;
  options.squaring_steps = steps;

  auto all = Measure(&outcome.precompute, [&] {
    return baselines::CoSimMateAllPairs(transition, options);
  });
  if (!all.ok()) {
    outcome.status = all.status();
    return outcome;
  }
  auto scores = Measure(&outcome.query, [&]() -> Result<DenseMatrix> {
    const Index n = all->rows();
    DenseMatrix out(n, static_cast<Index>(queries.size()));
    for (std::size_t j = 0; j < queries.size(); ++j) {
      for (Index i = 0; i < n; ++i) {
        out(i, static_cast<Index>(j)) = (*all)(i, queries[j]);
      }
    }
    return out;
  });
  if (!scores.ok()) {
    outcome.status = scores.status();
    return outcome;
  }
  if (config.keep_scores) outcome.scores = std::move(*scores);
  outcome.status = Status::OK();
  return outcome;
}

RunOutcome RunRpCoSim(const CsrMatrix& transition,
                      const std::vector<Index>& queries,
                      const RunConfig& config) {
  RunOutcome outcome;
  baselines::RpCoSimOptions options;
  options.damping = config.damping;
  options.iterations = static_cast<int>(config.rank);
  options.num_samples = config.rp_samples;

  auto scores = Measure(&outcome.query, [&] {
    return baselines::RpCoSimMultiSource(transition, queries, options);
  });
  if (!scores.ok()) {
    outcome.status = scores.status();
    return outcome;
  }
  if (config.keep_scores) outcome.scores = std::move(*scores);
  outcome.status = Status::OK();
  return outcome;
}

}  // namespace

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kCsrPlus:
      return "CSR+";
    case Method::kCsrNi:
      return "CSR-NI";
    case Method::kCsrIt:
      return "CSR-IT";
    case Method::kCsrRls:
      return "CSR-RLS";
    case Method::kCoSimMate:
      return "CoSimMate";
    case Method::kRpCoSim:
      return "RP-CoSim";
  }
  return "?";
}

const std::vector<Method>& PaperMethods() {
  static const std::vector<Method> kMethods = {
      Method::kCsrPlus, Method::kCsrRls, Method::kCsrIt, Method::kCsrNi};
  return kMethods;
}

RunOutcome RunMethod(Method method, const CsrMatrix& transition,
                     const std::vector<Index>& queries,
                     const RunConfig& config) {
  switch (method) {
    case Method::kCsrPlus:
      return RunCsrPlus(transition, queries, config);
    case Method::kCsrNi:
      return RunCsrNi(transition, queries, config);
    case Method::kCsrIt:
      return RunCsrIt(transition, queries, config);
    case Method::kCsrRls:
      return RunCsrRls(transition, queries, config);
    case Method::kCoSimMate:
      return RunCoSimMate(transition, queries, config);
    case Method::kRpCoSim:
      return RunRpCoSim(transition, queries, config);
  }
  RunOutcome outcome;
  outcome.status = Status::Internal("unknown method");
  return outcome;
}

std::string OutcomeLabel(const RunOutcome& outcome) {
  if (outcome.status.ok()) return "OK";
  if (outcome.status.IsResourceExhausted()) return "FAIL(mem)";
  return "FAIL(" + std::string(StatusCodeToString(outcome.status.code())) + ")";
}

}  // namespace csrplus::eval
