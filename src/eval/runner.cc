#include "eval/runner.h"

#include "common/memory.h"
#include "common/timer.h"
#include "service/engine_registry.h"

namespace csrplus::eval {
namespace {

// Runs `fn` and fills `metrics` with its wall time and the allocation peak
// above the level at entry.
template <typename Fn>
auto Measure(PhaseMetrics* metrics, Fn&& fn) {
  const int64_t base = GetTrackedMemory().current_bytes;
  ResetPeakTrackedBytes();
  WallTimer timer;
  auto result = fn();
  metrics->seconds = timer.ElapsedSeconds();
  metrics->peak_bytes =
      std::max<int64_t>(0, GetTrackedMemory().peak_bytes - base);
  return result;
}

using EnginePtr = std::unique_ptr<core::QueryEngine>;

service::EngineKind ToEngineKind(Method method) {
  switch (method) {
    case Method::kCsrPlus:
      return service::EngineKind::kCsrPlus;
    case Method::kCsrNi:
      return service::EngineKind::kCsrNi;
    case Method::kCsrIt:
      return service::EngineKind::kCsrIt;
    case Method::kCsrRls:
      return service::EngineKind::kCsrRls;
    case Method::kCoSimMate:
      return service::EngineKind::kCoSimMate;
    case Method::kRpCoSim:
      return service::EngineKind::kRpCoSim;
    case Method::kDynamic:
      return service::EngineKind::kDynamic;
  }
  return service::EngineKind::kCsrPlus;
}

}  // namespace

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kCsrPlus:
      return "CSR+";
    case Method::kCsrNi:
      return "CSR-NI";
    case Method::kCsrIt:
      return "CSR-IT";
    case Method::kCsrRls:
      return "CSR-RLS";
    case Method::kCoSimMate:
      return "CoSimMate";
    case Method::kRpCoSim:
      return "RP-CoSim";
    case Method::kDynamic:
      return "CSR+dyn";
  }
  return "?";
}

const std::vector<Method>& PaperMethods() {
  static const std::vector<Method> kMethods = {
      Method::kCsrPlus, Method::kCsrRls, Method::kCsrIt, Method::kCsrNi};
  return kMethods;
}

Result<EnginePtr> CreateEngine(Method method, const CsrMatrix& transition,
                               const RunConfig& config) {
  service::EngineConfig engine_config;
  engine_config.rank = config.rank;
  engine_config.damping = config.damping;
  engine_config.epsilon = config.epsilon;
  engine_config.ni_fidelity = config.ni_fidelity;
  engine_config.rp_samples = config.rp_samples;
  engine_config.precision = config.precision;
  return service::BuildEngine(ToEngineKind(method), transition, engine_config);
}

RunOutcome RunMethod(Method method, const CsrMatrix& transition,
                     const std::vector<Index>& queries,
                     const RunConfig& config) {
  RunOutcome outcome;
  auto engine = Measure(&outcome.precompute, [&] {
    return CreateEngine(method, transition, config);
  });
  if (!engine.ok()) {
    outcome.status = engine.status();
    return outcome;
  }
  auto scores = Measure(&outcome.query,
                        [&] { return (*engine)->MultiSourceQuery(queries); });
  if (!scores.ok()) {
    outcome.status = scores.status();
    return outcome;
  }
  if (config.keep_scores) outcome.scores = std::move(*scores);
  outcome.status = Status::OK();
  return outcome;
}

std::string OutcomeLabel(const RunOutcome& outcome) {
  if (outcome.status.ok()) return "OK";
  if (outcome.status.IsResourceExhausted()) return "FAIL(mem)";
  return "FAIL(" + std::string(StatusCodeToString(outcome.status.code())) + ")";
}

}  // namespace csrplus::eval
