// Uniform method runner: executes any of the six algorithms on a
// (transition matrix, query set) pair and reports per-phase wall time and
// tracked peak memory. All figure/table benches are thin loops around this.

#ifndef CSRPLUS_EVAL_RUNNER_H_
#define CSRPLUS_EVAL_RUNNER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/ni_sim.h"
#include "common/status.h"
#include "core/csrplus_engine.h"
#include "core/query_engine.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace csrplus::eval {

using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Index;

/// The algorithms under comparison. The first four are the paper's
/// (Figures 2–9); the next two are Table 1 rows implemented as extensions,
/// and kDynamic is the evolving-graph CSR+ engine served statically (it
/// answers exactly like kCsrPlus until edges are inserted).
enum class Method {
  kCsrPlus,    // this paper
  kCsrNi,      // Li et al. low-rank tensor-product method
  kCsrIt,      // Rothe & Schütze iterative (all-pairs dense)
  kCsrRls,     // Kusumoto-style per-query scheme
  kCoSimMate,  // repeated squaring in n-space
  kRpCoSim,    // Gaussian random projections
  kDynamic,    // CSR+ with incremental SVD maintenance (dynamic_engine.h)
};

/// Short display name ("CSR+", "CSR-NI", ...).
std::string_view MethodName(Method method);

/// The paper's four benchmarked methods, in its plotting order.
const std::vector<Method>& PaperMethods();

/// Shared algorithm parameters (defaults = the paper's §4.1 settings).
struct RunConfig {
  Index rank = 5;          ///< r; also the iteration count for IT/RLS.
  double damping = 0.6;    ///< c.
  double epsilon = 1e-5;   ///< CSR+ accuracy target.
  baselines::NiFidelity ni_fidelity = baselines::NiFidelity::kFaithful;
  Index rp_samples = 200;  ///< RP-CoSim sketch width.
  bool keep_scores = true; ///< retain the score block in the outcome.
  /// CSR+ serving tier (kF32 = quantised float factors + SIMD f32 kernels;
  /// baselines ignore it). The engine's Name() and StateFingerprint()
  /// change with the tier.
  core::Precision precision = core::Precision::kF64;
};

/// Wall time and tracked allocation peak of one phase.
struct PhaseMetrics {
  double seconds = 0.0;
  int64_t peak_bytes = 0;  ///< 0 when the memory hooks are not linked.
};

/// Result of one (method, dataset, config) execution.
struct RunOutcome {
  Status status;           ///< ResourceExhausted == the paper's "crash".
  PhaseMetrics precompute; ///< query-independent work.
  PhaseMetrics query;      ///< multi-source query work.
  DenseMatrix scores;      ///< n x |Q| block (empty if !keep_scores or fail).

  double total_seconds() const { return precompute.seconds + query.seconds; }
  int64_t peak_bytes() const {
    return std::max(precompute.peak_bytes, query.peak_bytes);
  }
};

/// Builds the query engine for `method` — the query-independent phase of
/// the run. CSR+/NI/IT/CoSimMate do all their precomputation here; RLS and
/// RP-CoSim keep no state, so their engines are thin wrappers that redo the
/// work per query call. `transition` must outlive the returned engine.
/// Thin forwarder onto service::BuildEngine (engine_registry.h), which owns
/// the method -> constructor dispatch.
Result<std::unique_ptr<core::QueryEngine>> CreateEngine(
    Method method, const CsrMatrix& transition, const RunConfig& config);

/// Runs `method` end to end. Never throws; failures land in `status`.
RunOutcome RunMethod(Method method, const CsrMatrix& transition,
                     const std::vector<Index>& queries,
                     const RunConfig& config);

/// "OK", "FAIL(mem)" or "FAIL(<code>)" cell text for tables.
std::string OutcomeLabel(const RunOutcome& outcome);

}  // namespace csrplus::eval

#endif  // CSRPLUS_EVAL_RUNNER_H_
