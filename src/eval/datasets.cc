#include "eval/datasets.h"

#include <filesystem>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "graph/generators/generators.h"
#include "graph/io.h"

namespace csrplus::eval {
namespace {

// Integer log2 for R-MAT scales derived from node counts.
int ScaleOf(Index nodes) {
  int scale = 0;
  while ((Index{1} << scale) < nodes) ++scale;
  return scale;
}

Result<Graph> Generate(const DatasetSpec& spec, Index nodes, int64_t edges) {
  // Seeds are fixed per dataset so graphs are identical across runs/binaries.
  if (spec.key == "fb") {
    // ego-Facebook analogue: hubs with dense overlapping circles; the
    // symmetrized edge count lands near the paper's 88k undirected edges.
    const Index egos = std::max<Index>(nodes / 20, 4);
    return graph::EgoOverlay(nodes, egos, /*ego_size=*/30,
                             /*within_ego_p=*/0.35,
                             /*background_edges=*/nodes * 3 / 2,
                             /*seed=*/0xFB00);
  }
  if (spec.key == "fb-mini" || spec.key == "p2p-mini") {
    if (spec.key == "fb-mini") {
      return graph::EgoOverlay(nodes, nodes / 20, 30, 0.35, nodes * 3 / 2,
                               0xFB11);
    }
    return graph::ErdosRenyi(nodes, edges, 0x1211);
  }
  if (spec.key == "p2p") {
    return graph::ErdosRenyi(nodes, edges, 0x1210);
  }
  if (spec.key == "yt") {
    return graph::BarabasiAlbert(nodes, /*edges_per_node=*/5, 0x5757);
  }
  if (spec.key == "wt") {
    return graph::Rmat(ScaleOf(nodes), edges, 0x5754);
  }
  if (spec.key == "tw") {
    return graph::Rmat(ScaleOf(nodes), edges, 0x5457);
  }
  if (spec.key == "wb") {
    return graph::Rmat(ScaleOf(nodes), edges, 0x5742);
  }
  return Status::NotFound("no generator for dataset '" + spec.key + "'");
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  // {key, paper_name, paper_n, paper_m, n_ci, m_ci, n_full, m_full}
  static const std::vector<DatasetSpec> kSpecs = {
      {"fb", "ego-Facebook", 4039, 88234, 4039, 0, 4039, 0},
      {"p2p", "Gnutella P2P", 22687, 54705, 5000, 12000, 22687, 54705},
      {"yt", "YouTube", 1134890, 5975248, 200000, 0, 1134890, 0},
      {"wt", "Wiki-Talk", 2394385, 5021410, 1 << 18, 550000, 1 << 21, 5021410},
      {"tw", "Twitter", 41625230, 1468365182, 1 << 19, 18300000, 1 << 22,
       147000000},
      {"wb", "WebBase", 118142155, 1019903190, 1 << 20, 9000000, 1 << 23,
       72000000},
      // Reduced graphs for the rank sweeps (Figures 4 and 8), where the
      // faithful O(r^4 n^2) CSR-NI baseline must run to r = 20 in minutes.
      {"fb-mini", "ego-Facebook (sweep-reduced)", 4039, 88234, 600, 0, 1200, 0},
      {"p2p-mini", "Gnutella P2P (sweep-reduced)", 22687, 54705, 600, 1440,
       1200, 2880},
  };
  return kSpecs;
}

Result<DatasetSpec> FindDataset(const std::string& key) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.key == key) return spec;
  }
  return Status::NotFound("unknown dataset '" + key + "'");
}

Result<Graph> LoadOrGenerate(const std::string& key, BenchScale scale,
                             const std::string& cache_dir) {
  CSR_ASSIGN_OR_RETURN(DatasetSpec spec, FindDataset(key));
  const Index nodes = scale == BenchScale::kFull ? spec.nodes_full : spec.nodes_ci;
  const int64_t edges = scale == BenchScale::kFull ? spec.edges_full : spec.edges_ci;

  std::string cache_path;
  if (!cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cache_dir, ec);
    cache_path = cache_dir + "/" + key +
                 (scale == BenchScale::kFull ? "-full" : "-ci") + ".csrg";
    if (std::filesystem::exists(cache_path)) {
      Result<Graph> cached = graph::LoadBinary(cache_path);
      if (cached.ok()) return cached;
      CSR_LOG_WARN << "ignoring unreadable cache " << cache_path << ": "
                   << cached.status().ToString();
    }
  }

  CSR_LOG_INFO << "generating dataset " << key << " (n=" << nodes
               << ", m~" << edges << ")";
  CSR_ASSIGN_OR_RETURN(Graph g, Generate(spec, nodes, edges));
  if (!cache_path.empty()) {
    Status saved = graph::SaveBinary(g, cache_path);
    if (!saved.ok()) {
      CSR_LOG_WARN << "could not cache " << cache_path << ": "
                   << saved.ToString();
    }
  }
  return g;
}

std::vector<Index> SampleQueries(const Graph& g, Index count, uint64_t seed) {
  CSR_CHECK_LE(count, g.num_nodes()) << "more queries than nodes";
  Rng rng(seed);
  std::unordered_set<Index> chosen;
  std::vector<Index> out;
  out.reserve(static_cast<std::size_t>(count));
  while (static_cast<Index>(out.size()) < count) {
    const Index node = static_cast<Index>(
        rng.Below(static_cast<uint64_t>(g.num_nodes())));
    if (chosen.insert(node).second) out.push_back(node);
  }
  return out;
}

}  // namespace csrplus::eval
