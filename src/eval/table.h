// Fixed-width console table printer for the benchmark harness; emits the
// paper-style rows (dataset x method x metric) plus optional CSV.

#ifndef CSRPLUS_EVAL_TABLE_H_
#define CSRPLUS_EVAL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace csrplus::eval {

/// Accumulates rows of string cells and prints them aligned.
class TablePrinter {
 public:
  /// Sets the header row.
  explicit TablePrinter(std::vector<std::string> columns);

  /// Appends one row; must match the column count.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  /// Renders as CSV (comma-separated, no quoting of commas — cells here are
  /// numbers and identifiers).
  void PrintCsv(std::FILE* out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.23e-04"-style compact scientific formatting.
std::string FormatSci(double value);

/// Seconds with 3 significant digits, or "FAIL(<reason>)" helpers.
std::string FormatTime(double seconds);

}  // namespace csrplus::eval

#endif  // CSRPLUS_EVAL_TABLE_H_
