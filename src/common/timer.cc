#include "common/timer.h"

#include <cstdio>

namespace csrplus {

void WallTimer::Restart() {
  accumulated_ = 0.0;
  start_ = Clock::now();
  running_ = true;
}

void WallTimer::Pause() {
  if (!running_) return;
  accumulated_ +=
      std::chrono::duration<double>(Clock::now() - start_).count();
  running_ = false;
}

void WallTimer::Resume() {
  if (running_) return;
  start_ = Clock::now();
  running_ = true;
}

double WallTimer::ElapsedSeconds() const {
  double total = accumulated_;
  if (running_) {
    total += std::chrono::duration<double>(Clock::now() - start_).count();
  }
  return total;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f s", seconds);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace csrplus
