// Status / Result error model for the csrplus library.
//
// Fallible public APIs never throw; they return Status (or Result<T> for a
// value-or-error). This follows the Arrow / RocksDB convention for database
// engine code: exceptions are disabled across the API boundary, and programmer
// errors are handled by CSR_CHECK assertions (see check.h).

#ifndef CSRPLUS_COMMON_STATUS_H_
#define CSRPLUS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace csrplus {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kResourceExhausted = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kNumericalError = 8,
  /// Stored data is unreadable: truncation, checksum mismatch, corruption.
  kDataLoss = 9,
  /// The operation cannot run against the current state (e.g. an artifact
  /// written by a newer format version, or for a different graph).
  kFailedPrecondition = 10,
  /// A per-request deadline expired before the result could be produced.
  kDeadlineExceeded = 11,
  /// The operation was cancelled by the caller before completion.
  kCancelled = 12,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
///
/// Cheap to copy in the OK case (no allocation). Construct errors via the
/// static factories, e.g. `return Status::InvalidArgument("rank must be > 0")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Is this status of the given error category?
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNumericalError() const { return code_ == StatusCode::kNumericalError; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Prepends `context` to the error message; no-op on OK statuses.
  /// Useful when propagating errors up a call chain.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status.
///
/// Access the value with `ValueOrDie()` / `operator*` only after checking
/// `ok()`; dereferencing an error Result aborts the process.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status. Must not be OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status: OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& ValueOrDie() const&;
  T& ValueOrDie() &;
  T&& ValueOrDie() &&;

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> payload_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
const T& Result<T>::ValueOrDie() const& {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(payload_));
  return std::get<T>(payload_);
}

template <typename T>
T& Result<T>::ValueOrDie() & {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(payload_));
  return std::get<T>(payload_);
}

template <typename T>
T&& Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(payload_));
  return std::move(std::get<T>(payload_));
}

/// Propagates an error Status out of the current function.
#define CSR_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::csrplus::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define CSR_CONCAT_IMPL(a, b) a##b
#define CSR_CONCAT(a, b) CSR_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define CSR_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  CSR_ASSIGN_OR_RETURN_IMPL(CSR_CONCAT(_result_, __LINE__), lhs, rexpr)

#define CSR_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).ValueOrDie()

}  // namespace csrplus

#endif  // CSRPLUS_COMMON_STATUS_H_
