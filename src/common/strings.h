// Small string utilities shared across IO and the benchmark harness.

#ifndef CSRPLUS_COMMON_STRINGS_H_
#define CSRPLUS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace csrplus {

/// Splits `text` on any run of the characters in `delims`; skips empty pieces.
std::vector<std::string_view> SplitFields(std::string_view text,
                                          std::string_view delims = " \t");

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace csrplus

#endif  // CSRPLUS_COMMON_STRINGS_H_
