#include "common/version.h"

namespace csrplus {

namespace {

#define CSRPLUS_STR_INNER(x) #x
#define CSRPLUS_STR(x) CSRPLUS_STR_INNER(x)

constexpr const char kVersionString[] =
    "csrplus " CSRPLUS_STR(CSRPLUS_VERSION_MAJOR) "." CSRPLUS_STR(
        CSRPLUS_VERSION_MINOR);

#undef CSRPLUS_STR
#undef CSRPLUS_STR_INNER

}  // namespace

const char* VersionString() { return kVersionString; }

}  // namespace csrplus
