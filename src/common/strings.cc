#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace csrplus {

std::vector<std::string_view> SplitFields(std::string_view text,
                                          std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t start = text.find_first_not_of(delims, pos);
    if (start == std::string_view::npos) break;
    std::size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) end = text.size();
    out.push_back(text.substr(start, end - start));
    pos = end;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  constexpr std::string_view kWs = " \t\r\n\v\f";
  std::size_t begin = text.find_first_not_of(kWs);
  if (begin == std::string_view::npos) return {};
  std::size_t end = text.find_last_not_of(kWs);
  return text.substr(begin, end - begin + 1);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace csrplus
