// Assertion macros for programmer errors (contract violations).
//
// CSR_CHECK* abort the process with a diagnostic; they are for invariants that
// can only be violated by a bug in the caller, never for recoverable
// conditions (use Status for those). CSR_DCHECK* compile away in NDEBUG
// builds and guard hot inner loops.

#ifndef CSRPLUS_COMMON_CHECK_H_
#define CSRPLUS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace csrplus {
namespace internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

// Stream sink that lets `CSR_CHECK(x) << "detail"` accumulate a message.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageBuilder() {
    CheckFail(file_, line_, expr_, stream_.str());
  }
  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace csrplus

#define CSR_CHECK(cond)                                                 \
  while (__builtin_expect(!(cond), 0))                                  \
  ::csrplus::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define CSR_CHECK_OP(a, b, op) CSR_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ")"
#define CSR_CHECK_EQ(a, b) CSR_CHECK_OP(a, b, ==)
#define CSR_CHECK_NE(a, b) CSR_CHECK_OP(a, b, !=)
#define CSR_CHECK_LT(a, b) CSR_CHECK_OP(a, b, <)
#define CSR_CHECK_LE(a, b) CSR_CHECK_OP(a, b, <=)
#define CSR_CHECK_GT(a, b) CSR_CHECK_OP(a, b, >)
#define CSR_CHECK_GE(a, b) CSR_CHECK_OP(a, b, >=)

/// Aborts if `status_expr` is not OK; for call sites where failure is a bug.
#define CSR_CHECK_OK(status_expr)                                    \
  do {                                                               \
    ::csrplus::Status _st = (status_expr);                           \
    CSR_CHECK(_st.ok()) << _st.ToString();                           \
  } while (0)

#ifdef NDEBUG
#define CSR_DCHECK(cond) \
  while (false) ::csrplus::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)
#else
#define CSR_DCHECK(cond) CSR_CHECK(cond)
#endif

#define CSR_DCHECK_EQ(a, b) CSR_DCHECK((a) == (b))
#define CSR_DCHECK_LT(a, b) CSR_DCHECK((a) < (b))
#define CSR_DCHECK_LE(a, b) CSR_DCHECK((a) <= (b))

#endif  // CSRPLUS_COMMON_CHECK_H_
