#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace csrplus {
namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
}

Rng Rng::ForBlock(uint64_t seed, uint64_t block) {
  // Hash the pair with two splitmix64 rounds and an asymmetric combine so
  // that (seed, block) and (seed - d, block + d) do not collide.
  uint64_t h = seed;
  uint64_t mixed = SplitMix64(h);
  h = mixed ^ (block + 0x9E3779B97F4A7C15ULL + (mixed << 6) + (mixed >> 2));
  mixed = SplitMix64(h);
  return Rng(mixed);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::Below(uint64_t bound) {
  CSR_DCHECK(bound > 0);
  // Lemire's nearly-divisionless rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::Int(int64_t lo, int64_t hi) {
  CSR_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

void Rng::Jump() {
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                       0xD5A61266F0C9392CULL,
                                       0xA9582618E03FC9AAULL,
                                       0x39ABDC4529B1661CULL};
  uint64_t t[4] = {0, 0, 0, 0};
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = t[0];
  s_[1] = t[1];
  s_[2] = t[2];
  s_[3] = t[3];
}

}  // namespace csrplus
