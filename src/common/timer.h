// Wall-clock timing utilities used by the benchmark harness.

#ifndef CSRPLUS_COMMON_TIMER_H_
#define CSRPLUS_COMMON_TIMER_H_

#include <chrono>
#include <string>

namespace csrplus {

/// Monotonic wall-clock stopwatch with pause/resume.
class WallTimer {
 public:
  /// Starts the timer immediately.
  WallTimer() { Restart(); }

  /// Resets accumulated time to zero and starts running.
  void Restart();

  /// Pauses accumulation; ElapsedSeconds() freezes until Resume().
  void Pause();

  /// Resumes after a Pause().
  void Resume();

  /// Total accumulated seconds (running or paused).
  double ElapsedSeconds() const;

  /// Accumulated milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double accumulated_ = 0.0;
  bool running_ = false;
};

/// Formats a duration in seconds as a short human string ("1.23 s", "45 ms").
std::string FormatSeconds(double seconds);

}  // namespace csrplus

#endif  // CSRPLUS_COMMON_TIMER_H_
