// Build identity of the csrplus library.
//
// A single pair of integer macros plus one string accessor, so every
// user-facing surface (CLI banner, bench banners, `.cspc` artifact trailer,
// benchmark JSON) can stamp its output with the library version that
// produced it. Bump MINOR for additive changes, MAJOR for breaking ones;
// keep in sync with the `project(... VERSION ...)` declaration in the
// top-level CMakeLists.txt.

#ifndef CSRPLUS_COMMON_VERSION_H_
#define CSRPLUS_COMMON_VERSION_H_

#include <cstdint>

#define CSRPLUS_VERSION_MAJOR 1
#define CSRPLUS_VERSION_MINOR 5

namespace csrplus {

/// "csrplus <major>.<minor>" — the canonical human-readable build identity.
const char* VersionString();

/// The version packed as (major << 32) | minor, the form embedded in the
/// `.cspc` artifact trailer.
constexpr uint64_t PackedVersion() {
  return (static_cast<uint64_t>(CSRPLUS_VERSION_MAJOR) << 32) |
         static_cast<uint64_t>(CSRPLUS_VERSION_MINOR);
}

}  // namespace csrplus

#endif  // CSRPLUS_COMMON_VERSION_H_
