// Environment-variable helpers used to parameterise benchmarks without
// recompiling (e.g. COSIM_SCALE=full for the large dataset configurations).

#ifndef CSRPLUS_COMMON_ENV_H_
#define CSRPLUS_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace csrplus {

/// Returns the value of environment variable `name`, or `fallback` if unset.
std::string GetEnvString(const std::string& name, const std::string& fallback);

/// Returns the integer value of `name`, or `fallback` if unset or malformed.
int64_t GetEnvInt64(const std::string& name, int64_t fallback);

/// Returns the double value of `name`, or `fallback` if unset or malformed.
double GetEnvDouble(const std::string& name, double fallback);

/// Benchmark scale selected via COSIM_SCALE: "ci" (default, minutes on one
/// core) or "full" (paper-scale synthetic graphs; needs tens of minutes).
enum class BenchScale { kCi, kFull };

/// Reads COSIM_SCALE once per call.
BenchScale GetBenchScale();

}  // namespace csrplus

#endif  // CSRPLUS_COMMON_ENV_H_
