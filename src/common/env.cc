#include "common/env.h"

#include <cstdlib>

namespace csrplus {

std::string GetEnvString(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return v == nullptr ? fallback : std::string(v);
}

int64_t GetEnvInt64(const std::string& name, int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  int64_t parsed = std::strtoll(v, &end, 10);
  return end == v ? fallback : parsed;
}

double GetEnvDouble(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return end == v ? fallback : parsed;
}

BenchScale GetBenchScale() {
  return GetEnvString("COSIM_SCALE", "ci") == "full" ? BenchScale::kFull
                                                     : BenchScale::kCi;
}

}  // namespace csrplus
