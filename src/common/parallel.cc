#include "common/parallel.h"

#include <algorithm>

#include "common/check.h"
#include "common/env.h"
#include "obs/trace.h"

namespace csrplus {
namespace {

// A shard must amortise the ~microsecond dispatch cost; below this many
// work units (roughly flops) per shard the loop runs with fewer shards or
// inline.
constexpr int64_t kMinWorkPerShard = 1 << 15;

constexpr int kMaxThreads = 256;

thread_local bool tls_in_worker = false;

int DefaultNumThreads() {
  const int64_t from_env = GetEnvInt64("CSRPLUS_NUM_THREADS", 0);
  if (from_env > 0) {
    return static_cast<int>(std::min<int64_t>(from_env, kMaxThreads));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min<unsigned>(hw, kMaxThreads));
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;  // joined at exit; no parallel regions run after main
  return pool;
}

ThreadPool::ThreadPool() : num_threads_(DefaultNumThreads()) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::InWorker() { return tls_in_worker; }

void ThreadPool::SetNumThreads(int n) {
  num_threads_.store(std::clamp(n, 1, kMaxThreads), std::memory_order_relaxed);
}

void ThreadPool::EnsureWorkers(int count) {
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Run(int64_t n, int shards, const ShardFn& fn) {
  if (n <= 0) return;
  shards = static_cast<int>(std::min<int64_t>(shards, n));
  if (shards <= 1 || num_threads() <= 1 || tls_in_worker) {
    // Serial bypass (also the nested-region path): same shard geometry,
    // executed inline in shard order.
    CSRPLUS_OBS_COUNTER_ADD("csrplus.pool.regions_inline", "calls",
                            "parallel regions executed inline (serial width, "
                            "single shard, or nested in a worker)",
                            1);
    if (shards <= 1) {
      fn(0, 0, n);
    } else {
      for (int s = 0; s < shards; ++s) {
        fn(s, n * s / shards, n * (s + 1) / shards);
      }
    }
    return;
  }

  CSRPLUS_OBS_COUNTER_ADD("csrplus.pool.regions_pooled", "calls",
                          "parallel regions dispatched to the shared pool", 1);
  CSRPLUS_OBS_COUNTER_ADD("csrplus.pool.shards_executed", "shards",
                          "shards executed by pooled regions", shards);
  CSRPLUS_OBS_GAUGE_SET("csrplus.pool.threads", "threads",
                        "configured pool width at the last pooled region",
                        num_threads());
  CSRPLUS_OBS_GAUGE_SET(
      "csrplus.pool.region_shards", "shards",
      "shard count of the most recent pooled region (the pool has a single "
      "job slot with static partitioning — this is its queue depth)",
      shards);
  CSRPLUS_OBS_SCOPED_US("csrplus.pool.region_us",
                        "wall time of each pooled parallel region");
  CSRPLUS_TRACE_SPAN_ARG(region_span, obs::spans::kPoolRegion, "shards",
                         shards);
  CSRPLUS_TRACE_ARG(region_span, "n", n);

  std::unique_lock<std::mutex> run_lock(run_mutex_);
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureWorkers(std::min(shards, num_threads()) - 1);
    job_fn_ = &fn;
    job_n_ = n;
    job_shards_ = shards;
    next_shard_ = 0;
    shards_done_ = 0;
    job_exception_ = nullptr;
    generation = ++job_generation_;
#if !defined(CSRPLUS_OBS_DISABLED)
    job_post_us_ = obs::NowMicros();
#endif
  }
  work_cv_.notify_all();
  // The caller participates in its own region. It must count as a worker
  // while doing so: a nested region started from one of its shards has to
  // take the inline path rather than re-enter Run and self-deadlock on
  // run_mutex_. WorkShards never throws (shard exceptions are captured), so
  // plain save/restore is safe.
  const bool was_in_worker = tls_in_worker;
  tls_in_worker = true;
  WorkShards(generation);
  tls_in_worker = was_in_worker;
  std::exception_ptr pending;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return shards_done_ >= job_shards_; });
    job_fn_ = nullptr;
    pending = job_exception_;
    job_exception_ = nullptr;
  }
  run_lock.unlock();
  if (pending) std::rethrow_exception(pending);
}

void ThreadPool::WorkShards(uint64_t generation) {
#if !defined(CSRPLUS_OBS_DISABLED)
  // First shard claimed by this thread for this generation measures the
  // post-to-pickup latency (wake + scheduling), the pool's "wait time".
  thread_local uint64_t tls_last_wait_generation = 0;
#endif
  while (true) {
    const ShardFn* fn;
    int64_t n;
    int shards;
    int s;
#if !defined(CSRPLUS_OBS_DISABLED)
    int64_t wait_us = -1;
#endif
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A worker that woke late may find a successor job (or none) in the
      // slot; it must not claim shards it was not woken for.
      if (job_fn_ == nullptr || job_generation_ != generation) return;
      if (next_shard_ >= job_shards_) return;
      s = next_shard_++;
      fn = job_fn_;
      n = job_n_;
      shards = job_shards_;
#if !defined(CSRPLUS_OBS_DISABLED)
      if (tls_last_wait_generation != generation) {
        tls_last_wait_generation = generation;
        wait_us = static_cast<int64_t>(obs::NowMicros() - job_post_us_);
      }
#endif
    }
#if !defined(CSRPLUS_OBS_DISABLED)
    if (wait_us >= 0) {
      CSRPLUS_OBS_HISTOGRAM_RECORD(
          "csrplus.pool.worker_wait_us", "us",
          "latency from region post to a thread's first shard pickup",
          static_cast<uint64_t>(wait_us));
    }
#endif
    try {
      (*fn)(s, n * s / shards, n * (s + 1) / shards);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job_exception_) job_exception_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Holding an unfinished shard pins the job, so this is still our
      // generation; the owner in Run() cannot retire it before the count
      // below reaches job_shards_.
      if (++shards_done_ == shards) done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return stop_ || job_generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = job_generation_;
    }
    WorkShards(seen_generation);
  }
}

int GetNumThreads() { return ThreadPool::Global().num_threads(); }

void SetNumThreads(int n) { ThreadPool::Global().SetNumThreads(n); }

int ParallelShardCount(int64_t n, int64_t work) {
  if (n <= 1 || ThreadPool::InWorker()) return 1;
  const int threads = GetNumThreads();
  if (threads <= 1) return 1;
  const int64_t by_work = work / kMinWorkPerShard;
  const int64_t shards = std::min<int64_t>({threads, n, by_work});
  return static_cast<int>(std::max<int64_t>(shards, 1));
}

void ParallelFor(int64_t n, int64_t work,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int shards = ParallelShardCount(n, work);
  if (shards <= 1) {
    CSRPLUS_OBS_COUNTER_ADD("csrplus.pool.regions_inline", "calls",
                            "parallel regions executed inline (serial width, "
                            "single shard, or nested in a worker)",
                            1);
    fn(0, n);
    return;
  }
  ThreadPool::Global().Run(
      n, shards, [&fn](int, int64_t begin, int64_t end) { fn(begin, end); });
}

void ParallelForShards(int64_t n, int shards, const ShardFn& fn) {
  if (n <= 0) return;
  CSR_CHECK(shards >= 1);
  ThreadPool::Global().Run(n, shards, fn);
}

}  // namespace csrplus
