#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace csrplus {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  Status copy = *this;
  copy.message_ = std::string(context) + ": " + copy.message_;
  return copy;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Fatal: ValueOrDie() on error result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace csrplus
