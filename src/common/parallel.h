// Shared fixed-size thread pool and data-parallel loop helpers.
//
// Every hot kernel in the library (dense GEMM, sparse SpMV/SpMM, the SVD
// sketch loops, the CSR+ query phase) is expressed as a loop over disjoint
// index ranges and parallelised through this module. Design points:
//
//  * Fixed-size pool, lazily started: no thread is spawned until the first
//    parallel region actually runs with more than one shard.
//  * Width comes from `CSRPLUS_NUM_THREADS` (or hardware concurrency when
//    unset) and can be overridden at runtime with SetNumThreads() /
//    CsrPlusOptions::num_threads.
//  * `num_threads == 1` bypasses the pool entirely — the loop body runs
//    inline on the caller, so serial behaviour is bit-identical to a build
//    without this module.
//  * Static contiguous partitioning, no work stealing: shard s of S covers
//    [n*s/S, n*(s+1)/S). Kernels that write disjoint output ranges are
//    therefore bit-deterministic for *any* thread count; kernels that reduce
//    per-shard partials are deterministic for a fixed thread count.
//  * Nested parallel regions (a ParallelFor issued from inside a pool
//    worker) run inline serially, so callers may freely compose parallel
//    kernels without deadlock or oversubscription.
//
// Exceptions thrown by a shard are captured and rethrown on the calling
// thread after the region completes (first one wins).

#ifndef CSRPLUS_COMMON_PARALLEL_H_
#define CSRPLUS_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csrplus {

/// Loop body over one shard: fn(shard, begin, end) with begin/end an index
/// sub-range of [0, n). Shard ids are dense in [0, num_shards).
using ShardFn = std::function<void(int, int64_t, int64_t)>;

/// Process-wide fixed-size pool. Use the free functions below instead of
/// talking to the pool directly unless you need explicit shard control.
class ThreadPool {
 public:
  /// The lazily-constructed process-wide instance.
  static ThreadPool& Global();

  /// Currently configured width (>= 1).
  int num_threads() const { return num_threads_.load(std::memory_order_relaxed); }

  /// Sets the pool width (clamped to [1, 256]). Existing workers are kept;
  /// missing ones are spawned lazily by the next parallel region. Not
  /// thread-safe against concurrent parallel regions.
  void SetNumThreads(int n);

  /// Runs fn over [0, n) split into `shards` contiguous ranges, blocking
  /// until every shard finished. Runs inline (in shard order) when shards
  /// <= 1, the pool width is 1, or the caller is itself a pool worker.
  void Run(int64_t n, int shards, const ShardFn& fn);

  /// True when called from inside a pool worker thread.
  static bool InWorker();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  ~ThreadPool();

  void EnsureWorkers(int count);
  void WorkerLoop();
  /// Claims and executes shards of the job tagged `generation`; returns as
  /// soon as the current job is a different generation (a worker that woke
  /// late must not touch a successor job's state — its captured ShardFn
  /// pointer would dangle).
  void WorkShards(uint64_t generation);

  std::atomic<int> num_threads_;
  std::mutex run_mutex_;  // serialises concurrent Run() callers

  std::mutex mu_;  // guards the job slot below and both cvs
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t job_generation_ = 0;
  uint64_t job_post_us_ = 0;  // obs timestamp of the current job's post
  const ShardFn* job_fn_ = nullptr;
  int64_t job_n_ = 0;
  int job_shards_ = 0;
  int next_shard_ = 0;    // guarded by mu_
  int shards_done_ = 0;   // guarded by mu_
  std::exception_ptr job_exception_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Ambient pool width (CSRPLUS_NUM_THREADS / hardware default / last
/// SetNumThreads call).
int GetNumThreads();

/// Overrides the ambient pool width for the whole process.
void SetNumThreads(int n);

/// Number of shards a parallel loop over [0, n) with an estimated total cost
/// of `work` (arbitrary units, roughly flops) would use: 1 when the region
/// is too small to amortise dispatch, otherwise min(threads, n, work-based
/// cap). Call this before ParallelForShards to size per-shard scratch.
int ParallelShardCount(int64_t n, int64_t work);

/// Runs fn(begin, end) over a partition of [0, n); serial (one inline call
/// fn(0, n)) when ParallelShardCount(n, work) == 1.
void ParallelFor(int64_t n, int64_t work,
                 const std::function<void(int64_t, int64_t)>& fn);

/// As ParallelFor but the body also receives its shard id, for kernels that
/// accumulate into per-shard scratch. `shards` must come from
/// ParallelShardCount (or be 1).
void ParallelForShards(int64_t n, int shards, const ShardFn& fn);

}  // namespace csrplus

#endif  // CSRPLUS_COMMON_PARALLEL_H_
