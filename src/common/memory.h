// Memory accounting for the experimental harness.
//
// Two complementary mechanisms:
//
//  1. *Tracked logical bytes* — a global counter fed by the operator
//     new/delete hooks in memory_hooks.cc (linked into benchmark binaries
//     only). It reports what the process actually allocates, with a
//     resettable high-water mark so each phase of an algorithm can be
//     measured separately (Figures 6–9).
//
//  2. *Memory budget* — a process-wide cap that algorithms consult before
//     making very large allocations (TryReserve). Baselines whose published
//     form needs O(n^2) or O(r^2 n^2) memory return ResourceExhausted when
//     the budget would be exceeded, reproducing the paper's "fails due to
//     memory explosion" outcomes deterministically instead of OOM-killing
//     the process.

#ifndef CSRPLUS_COMMON_MEMORY_H_
#define CSRPLUS_COMMON_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace csrplus {

/// Snapshot of the tracked-allocation counters.
struct MemoryStats {
  /// Bytes currently allocated (0 unless the hooks are linked).
  int64_t current_bytes = 0;
  /// High-water mark since the last ResetPeakTrackedBytes().
  int64_t peak_bytes = 0;
};

/// Reads the tracked-allocation counters (zero if hooks are not linked).
MemoryStats GetTrackedMemory();

/// Resets the tracked high-water mark to the current level. Returns the peak
/// that was in effect before the reset.
int64_t ResetPeakTrackedBytes();

/// True when the operator new/delete hooks are linked into this binary.
bool MemoryTrackingActive();

namespace internal {
// Called by the allocation hooks. Not for direct use.
void RecordAlloc(std::size_t bytes);
void RecordFree(std::size_t bytes);
void MarkTrackingActive();
}  // namespace internal

/// Peak resident set size of this process in bytes (VmHWM), or 0 on failure.
int64_t PeakRssBytes();

/// Current resident set size in bytes (VmRSS), or 0 on failure.
int64_t CurrentRssBytes();

/// Process-wide cap on a single logical reservation, used by algorithms whose
/// published form requires memory super-linear in n. Defaults to 12 GiB or
/// the CSRPLUS_MEMORY_BUDGET_BYTES environment variable.
class MemoryBudget {
 public:
  /// The process-wide budget instance.
  static MemoryBudget& Global();

  /// Replaces the cap (bytes). Thread-compatible, not thread-safe.
  void SetLimit(int64_t bytes) { limit_bytes_ = bytes; }
  int64_t limit_bytes() const { return limit_bytes_; }

  /// Returns OK if a reservation of `bytes` fits under the cap, otherwise a
  /// ResourceExhausted status naming `what`. Purely advisory: nothing is
  /// actually reserved; callers allocate on success.
  Status TryReserve(int64_t bytes, std::string_view what) const;

 private:
  MemoryBudget();
  int64_t limit_bytes_;
};

/// Formats a byte count as a short human string ("1.25 GiB", "340 KiB").
std::string FormatBytes(int64_t bytes);

}  // namespace csrplus

#endif  // CSRPLUS_COMMON_MEMORY_H_
