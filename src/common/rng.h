// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (graph generators, randomized SVD,
// Gaussian projections) draw from Rng, a xoshiro256** generator seeded
// explicitly, so every experiment is bit-reproducible across runs.

#ifndef CSRPLUS_COMMON_RNG_H_
#define CSRPLUS_COMMON_RNG_H_

#include <cstdint>

namespace csrplus {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
///
/// Not cryptographically secure; chosen for speed and statistical quality in
/// simulation workloads. Copyable; copies continue independent streams only
/// if `Jump()` is used.
class Rng {
 public:
  /// Seeds the four-word state from `seed` via splitmix64 so that any seed
  /// (including 0) yields a well-mixed state.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// An independent stream derived from `(seed, block)` by hashing the pair
  /// through splitmix64. Parallel kernels draw one stream per logical block
  /// (e.g. per matrix row), so the numbers consumed depend only on the seed
  /// and the block index — never on how blocks are scheduled across threads
  /// or on the thread count.
  static Rng ForBlock(uint64_t seed, uint64_t block);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, bound) without modulo bias. `bound` must be > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi);

  /// Standard normal variate (Box–Muller with caching).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Advances the state by 2^128 steps; used to split independent streams.
  void Jump();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace csrplus

#endif  // CSRPLUS_COMMON_RNG_H_
