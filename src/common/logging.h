// Minimal leveled logging to stderr.
//
// Usage: CSR_LOG(INFO) << "svd converged after " << iters << " sweeps";
// The global level is settable programmatically or via the CSRPLUS_LOG_LEVEL
// environment variable (DEBUG|INFO|WARN|ERROR|OFF), read once at startup.

#ifndef CSRPLUS_COMMON_LOGGING_H_
#define CSRPLUS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace csrplus {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Current minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace csrplus

#define CSR_LOG(severity)                                             \
  ::csrplus::internal::LogMessage(::csrplus::LogLevel::k##severity,   \
                                  __FILE__, __LINE__)

#define CSR_LOG_DEBUG CSR_LOG(Debug)
#define CSR_LOG_INFO CSR_LOG(Info)
#define CSR_LOG_WARN CSR_LOG(Warn)
#define CSR_LOG_ERROR CSR_LOG(Error)

#endif  // CSRPLUS_COMMON_LOGGING_H_
