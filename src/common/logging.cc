#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace csrplus {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("CSRPLUS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "WARN") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  if (std::strcmp(env, "OFF") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& LevelVar() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelVar().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               LevelVar().load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace csrplus
