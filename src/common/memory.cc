#include "common/memory.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/stats.h"

namespace csrplus {
namespace {

std::atomic<int64_t> g_current{0};
std::atomic<int64_t> g_peak{0};
std::atomic<bool> g_active{false};

// Reads a "Vm...:   <kB> kB" field from /proc/self/status.
int64_t ReadProcStatusKb(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      std::sscanf(line + field_len, " %" SCNd64, &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

MemoryStats GetTrackedMemory() {
  MemoryStats stats;
  stats.current_bytes = g_current.load(std::memory_order_relaxed);
  stats.peak_bytes = g_peak.load(std::memory_order_relaxed);
  return stats;
}

int64_t ResetPeakTrackedBytes() {
  int64_t old_peak = g_peak.load(std::memory_order_relaxed);
  g_peak.store(g_current.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  return old_peak;
}

bool MemoryTrackingActive() {
  return g_active.load(std::memory_order_relaxed);
}

namespace internal {

void RecordAlloc(std::size_t bytes) {
  int64_t now = g_current.fetch_add(static_cast<int64_t>(bytes),
                                    std::memory_order_relaxed) +
                static_cast<int64_t>(bytes);
  int64_t peak = g_peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void RecordFree(std::size_t bytes) {
  g_current.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
}

void MarkTrackingActive() { g_active.store(true, std::memory_order_relaxed); }

}  // namespace internal

int64_t PeakRssBytes() { return ReadProcStatusKb("VmHWM:"); }

int64_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS:"); }

MemoryBudget::MemoryBudget() {
  constexpr int64_t kDefault = 12LL * 1024 * 1024 * 1024;  // 12 GiB
  limit_bytes_ = kDefault;
  if (const char* env = std::getenv("CSRPLUS_MEMORY_BUDGET_BYTES")) {
    char* end = nullptr;
    int64_t v = std::strtoll(env, &end, 10);
    if (end != env && v > 0) limit_bytes_ = v;
  }
}

MemoryBudget& MemoryBudget::Global() {
  static MemoryBudget budget;
  return budget;
}

Status MemoryBudget::TryReserve(int64_t bytes, std::string_view what) const {
  if (bytes < 0) {
    return Status::InvalidArgument("negative reservation for " +
                                   std::string(what));
  }
  if (bytes > limit_bytes_) {
    CSRPLUS_OBS_COUNTER_ADD(
        "csrplus.mem.reserve_rejected", "calls",
        "budget reservations refused with ResourceExhausted", 1);
    return Status::ResourceExhausted(
        std::string(what) + " needs " + FormatBytes(bytes) +
        " which exceeds the memory budget of " + FormatBytes(limit_bytes_));
  }
  CSRPLUS_OBS_COUNTER_ADD("csrplus.mem.reserve_ok", "calls",
                          "budget reservations that fit under the cap", 1);
  CSRPLUS_OBS_HISTOGRAM_RECORD("csrplus.mem.reserve_bytes", "bytes",
                               "size distribution of granted reservations",
                               static_cast<uint64_t>(bytes));
  CSRPLUS_OBS_GAUGE_SET_MAX("csrplus.mem.largest_reservation_bytes", "bytes",
                            "largest single reservation granted so far",
                            bytes);
  return Status::OK();
}

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1LL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1LL << 30));
  } else if (bytes >= (1LL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / (1LL << 20));
  } else if (bytes >= (1LL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / (1LL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " B", bytes);
  }
  return buf;
}

}  // namespace csrplus
