// Global operator new/delete overrides that feed the tracked-memory counters.
//
// This translation unit is compiled into its own library (csrplus_memhooks)
// and linked ONLY into the benchmark binaries, where per-algorithm memory
// accounting (Figures 6–9) is needed. Library code and unit tests are built
// without it and observe zeroed counters.

#include <malloc.h>

#include <cstdlib>
#include <new>

#include "common/memory.h"

namespace {

struct ActivateTracking {
  ActivateTracking() { csrplus::internal::MarkTrackingActive(); }
} g_activate;

void* TrackedAlloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  csrplus::internal::RecordAlloc(malloc_usable_size(p));
  return p;
}

void* TrackedAlignedAlloc(std::size_t size, std::size_t alignment) {
  void* p = std::aligned_alloc(alignment, (size + alignment - 1) / alignment *
                                              alignment);
  if (p == nullptr) throw std::bad_alloc();
  csrplus::internal::RecordAlloc(malloc_usable_size(p));
  return p;
}

void TrackedFree(void* p) noexcept {
  if (p == nullptr) return;
  csrplus::internal::RecordFree(malloc_usable_size(p));
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return TrackedAlloc(size); }
void* operator new[](std::size_t size) { return TrackedAlloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) csrplus::internal::RecordAlloc(malloc_usable_size(p));
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return TrackedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return TrackedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { TrackedFree(p); }
void operator delete[](void* p) noexcept { TrackedFree(p); }
void operator delete(void* p, std::size_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { TrackedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  TrackedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  TrackedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { TrackedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  TrackedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  TrackedFree(p);
}
